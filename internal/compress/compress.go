// Package compress implements the byte-level codecs motes use when pushing
// batched data to a proxy: quantized delta coding with zigzag varints, and
// a combined batch encoder that optionally runs wavelet denoising first
// (Figure 2's "Batched Push w/ Wavelet Denoising").
//
// The encoded byte counts produced here are charged directly to the radio
// energy model, so the codecs are real, reversible codecs — not estimates.
package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"presto/internal/wavelet"
)

// ErrBadQuantum is returned when a quantization step is not positive.
var ErrBadQuantum = errors.New("compress: quantization step must be positive")

// DeltaEncode quantizes xs to multiples of q and encodes the first value
// followed by successive differences as zigzag varints. Smooth sensor
// series produce mostly 1-byte deltas.
func DeltaEncode(xs []float64, q float64) ([]byte, error) {
	if q <= 0 {
		return nil, ErrBadQuantum
	}
	// Round the quantum through float32 first so the encoder quantizes
	// with exactly the value the decoder will read from the header.
	q = float64(float32(q))
	buf := make([]byte, 0, len(xs)+16)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(xs)))
	binary.LittleEndian.PutUint32(hdr[4:], math.Float32bits(float32(q)))
	buf = append(buf, hdr[:]...)
	prev := int64(0)
	for i, x := range xs {
		ticks := int64(math.Round(x / q))
		var d int64
		if i == 0 {
			d = ticks
		} else {
			d = ticks - prev
		}
		prev = ticks
		buf = binary.AppendVarint(buf, d)
	}
	return buf, nil
}

// DeltaDecode reverses DeltaEncode. Reconstruction error is at most q/2
// per sample.
func DeltaDecode(buf []byte) ([]float64, error) {
	if len(buf) < 8 {
		return nil, fmt.Errorf("compress: short delta buffer (%d bytes)", len(buf))
	}
	n := int(binary.LittleEndian.Uint32(buf[0:]))
	q := float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[4:])))
	if q <= 0 {
		return nil, ErrBadQuantum
	}
	if n < 0 || n > 1<<28 {
		return nil, fmt.Errorf("compress: implausible sample count %d", n)
	}
	// Cap the preallocation: the header's count is untrusted (it arrived
	// over the radio), so a hostile value must not force a huge alloc —
	// the varint loop below fails fast on truncated input anyway.
	capHint := n
	if capHint > 4096 {
		capHint = 4096
	}
	out := make([]float64, 0, capHint)
	rest := buf[8:]
	ticks := int64(0)
	for i := 0; i < n; i++ {
		d, sz := binary.Varint(rest)
		if sz <= 0 {
			return nil, fmt.Errorf("compress: truncated varint at sample %d", i)
		}
		rest = rest[sz:]
		if i == 0 {
			ticks = d
		} else {
			ticks += d
		}
		out = append(out, float64(ticks)*q)
	}
	return out, nil
}

// Mode selects the batch codec.
type Mode int

const (
	// Raw sends IEEE-754 float32 samples with no compression: the
	// "Batched Push w/o Compression" line in Figure 2.
	Raw Mode = iota
	// Delta sends quantized delta varints.
	Delta
	// WaveletDenoise runs Haar denoising then delta-codes the sparse
	// coefficients: the "Batched Push w/ Wavelet Denoising" line.
	WaveletDenoise
)

// String names the mode for reports.
func (m Mode) String() string {
	switch m {
	case Raw:
		return "raw"
	case Delta:
		return "delta"
	case WaveletDenoise:
		return "wavelet+delta"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Batch is a batch codec configuration.
type Batch struct {
	Mode Mode
	// Quantum is the quantization step for Delta mode (e.g. 0.05 °C).
	Quantum float64
	// Threshold is the wavelet denoising threshold for WaveletDenoise
	// mode, in coefficient units; per-sample error is bounded by roughly
	// Threshold.
	Threshold float64
}

// wire format tags
const (
	tagRaw     = 0x01
	tagDelta   = 0x02
	tagWavelet = 0x03
)

// Encode compresses one batch of samples into wire bytes.
func (b Batch) Encode(xs []float64) ([]byte, error) {
	switch b.Mode {
	case Raw:
		buf := make([]byte, 5+4*len(xs))
		buf[0] = tagRaw
		binary.LittleEndian.PutUint32(buf[1:], uint32(len(xs)))
		for i, x := range xs {
			binary.LittleEndian.PutUint32(buf[5+4*i:], math.Float32bits(float32(x)))
		}
		return buf, nil
	case Delta:
		q := b.Quantum
		if q <= 0 {
			q = 0.05
		}
		inner, err := DeltaEncode(xs, q)
		if err != nil {
			return nil, err
		}
		return append([]byte{tagDelta}, inner...), nil
	case WaveletDenoise:
		th := b.Threshold
		if th <= 0 {
			th = 0.5
		}
		s, err := wavelet.Compress(xs, th)
		if err != nil {
			return nil, err
		}
		inner := s.Marshal()
		return append([]byte{tagWavelet}, inner...), nil
	default:
		return nil, fmt.Errorf("compress: unknown mode %v", b.Mode)
	}
}

// Decode reverses Encode regardless of which mode produced the bytes.
func Decode(buf []byte) ([]float64, error) {
	if len(buf) < 1 {
		return nil, errors.New("compress: empty batch buffer")
	}
	switch buf[0] {
	case tagRaw:
		if len(buf) < 5 {
			return nil, errors.New("compress: short raw header")
		}
		n := int(binary.LittleEndian.Uint32(buf[1:]))
		if len(buf) < 5+4*n {
			return nil, fmt.Errorf("compress: raw buffer truncated: want %d samples", n)
		}
		out := make([]float64, n)
		for i := range out {
			out[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[5+4*i:])))
		}
		return out, nil
	case tagDelta:
		return DeltaDecode(buf[1:])
	case tagWavelet:
		s, err := wavelet.UnmarshalSparse(buf[1:])
		if err != nil {
			return nil, err
		}
		return wavelet.Decompress(s)
	default:
		return nil, fmt.Errorf("compress: unknown batch tag 0x%02x", buf[0])
	}
}

// DecodeBound reports the per-sample reconstruction error bound implied
// by an encoded batch: 0 for raw float32, quantum/2 for delta coding, and
// unbounded (+Inf) for wavelet denoising, whose threshold does not ride
// the wire and whose per-sample error is only roughly bounded by it.
// Consumers that need a guaranteed bound (the proxy's archive sink) treat
// +Inf as "never precise enough".
func DecodeBound(buf []byte) float64 {
	if len(buf) < 1 {
		return math.Inf(1)
	}
	switch buf[0] {
	case tagRaw:
		return 0
	case tagDelta:
		if len(buf) < 9 {
			return math.Inf(1)
		}
		q := float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[5:])))
		if q <= 0 {
			return math.Inf(1)
		}
		return q / 2
	default:
		return math.Inf(1)
	}
}

// TimestampEncode appends a non-decreasing int64 timestamp sequence to buf
// using delta-of-delta varints: the first value and first delta as uvarints,
// then zigzag varints of each delta's change. On a regular sample grid every
// delta-of-delta is zero, so N timestamps cost ~N bytes — the property the
// flash archive's wavelet aging relies on to keep full time coverage while
// shrinking old segments. Decode with TimestampDecode(buf, len(ts)).
func TimestampEncode(buf []byte, ts []int64) ([]byte, error) {
	if len(ts) == 0 {
		return buf, nil
	}
	if ts[0] < 0 {
		return nil, fmt.Errorf("compress: negative timestamp %d", ts[0])
	}
	buf = binary.AppendUvarint(buf, uint64(ts[0]))
	prevDelta := int64(0)
	for i := 1; i < len(ts); i++ {
		d := ts[i] - ts[i-1]
		if d < 0 {
			return nil, fmt.Errorf("compress: timestamps decrease at %d (%d -> %d)", i, ts[i-1], ts[i])
		}
		if i == 1 {
			buf = binary.AppendUvarint(buf, uint64(d))
		} else {
			buf = binary.AppendVarint(buf, d-prevDelta)
		}
		prevDelta = d
	}
	return buf, nil
}

// TimestampDecode reverses TimestampEncode, reading exactly n timestamps
// from the front of buf. It returns the timestamps and the unconsumed rest
// of the buffer (the sequence is not self-delimiting: the caller carries n).
func TimestampDecode(buf []byte, n int) ([]int64, []byte, error) {
	if n <= 0 {
		return nil, buf, nil
	}
	out := make([]int64, 0, n)
	first, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, nil, errors.New("compress: truncated first timestamp")
	}
	buf = buf[sz:]
	out = append(out, int64(first))
	delta := int64(0)
	for i := 1; i < n; i++ {
		if i == 1 {
			d, sz := binary.Uvarint(buf)
			if sz <= 0 {
				return nil, nil, errors.New("compress: truncated first delta")
			}
			buf = buf[sz:]
			delta = int64(d)
		} else {
			dod, sz := binary.Varint(buf)
			if sz <= 0 {
				return nil, nil, fmt.Errorf("compress: truncated delta-of-delta at %d", i)
			}
			buf = buf[sz:]
			delta += dod
		}
		if delta < 0 {
			return nil, nil, fmt.Errorf("compress: negative delta at %d", i)
		}
		out = append(out, out[i-1]+delta)
	}
	return out, buf, nil
}

// Ratio reports the compression ratio achieved on xs: encoded bytes divided
// by raw float32 bytes. Lower is better; Raw mode is ~1.
func (b Batch) Ratio(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 1, nil
	}
	enc, err := b.Encode(xs)
	if err != nil {
		return 0, err
	}
	return float64(len(enc)) / float64(4*len(xs)), nil
}
