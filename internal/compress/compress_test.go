package compress

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func maxErr(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func smoothSeries(n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 20 + 5*math.Sin(2*math.Pi*float64(i)/float64(n)) + 0.01*float64(i%3)
	}
	return xs
}

func TestDeltaRoundTrip(t *testing.T) {
	xs := smoothSeries(200)
	buf, err := DeltaEncode(xs, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DeltaDecode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(xs) {
		t.Fatalf("len=%d, want %d", len(got), len(xs))
	}
	if e := maxErr(got, xs); e > 0.025+1e-9 {
		t.Fatalf("quantization error %g exceeds q/2", e)
	}
}

func TestDeltaCompressesSmoothData(t *testing.T) {
	xs := smoothSeries(1000)
	buf, err := DeltaEncode(xs, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	raw := 4 * len(xs)
	if len(buf) > raw/2 {
		t.Fatalf("delta coding achieved only %d/%d bytes on smooth data", len(buf), raw)
	}
}

func TestDeltaBadQuantum(t *testing.T) {
	if _, err := DeltaEncode([]float64{1}, 0); err != ErrBadQuantum {
		t.Fatalf("err=%v, want ErrBadQuantum", err)
	}
	if _, err := DeltaEncode([]float64{1}, -3); err != ErrBadQuantum {
		t.Fatalf("err=%v, want ErrBadQuantum", err)
	}
}

func TestDeltaDecodeErrors(t *testing.T) {
	if _, err := DeltaDecode([]byte{1, 2}); err == nil {
		t.Fatal("short buffer should fail")
	}
	xs := []float64{1, 2, 3}
	buf, _ := DeltaEncode(xs, 0.1)
	if _, err := DeltaDecode(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated varints should fail")
	}
}

func TestDeltaEmpty(t *testing.T) {
	buf, err := DeltaEncode(nil, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DeltaDecode(buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty round-trip: %v, %v", got, err)
	}
}

func TestBatchRaw(t *testing.T) {
	xs := []float64{1.5, -2.25, 100}
	b := Batch{Mode: Raw}
	enc, err := b.Encode(xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != 5+4*3 {
		t.Fatalf("raw size %d", len(enc))
	}
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxErr(got, xs); e > 1e-5 {
		t.Fatalf("raw round-trip error %g", e)
	}
}

func TestBatchDelta(t *testing.T) {
	xs := smoothSeries(128)
	b := Batch{Mode: Delta, Quantum: 0.02}
	enc, err := b.Encode(xs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxErr(got, xs); e > 0.011 {
		t.Fatalf("delta round-trip error %g", e)
	}
}

func TestBatchWavelet(t *testing.T) {
	xs := smoothSeries(128)
	b := Batch{Mode: WaveletDenoise, Threshold: 0.3}
	enc, err := b.Encode(xs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(xs) {
		t.Fatalf("len=%d", len(got))
	}
	if e := maxErr(got, xs); e > 1.0 {
		t.Fatalf("wavelet round-trip error %g too large", e)
	}
}

func TestCompressionOrdering(t *testing.T) {
	// On smooth batched data: wavelet < delta < raw in bytes. This is the
	// size relationship Figure 2 relies on.
	xs := smoothSeries(512)
	raw, _ := Batch{Mode: Raw}.Encode(xs)
	delta, _ := Batch{Mode: Delta, Quantum: 0.05}.Encode(xs)
	wav, _ := Batch{Mode: WaveletDenoise, Threshold: 0.5}.Encode(xs)
	if !(len(wav) < len(delta) && len(delta) < len(raw)) {
		t.Fatalf("sizes wavelet=%d delta=%d raw=%d; want strictly increasing", len(wav), len(delta), len(raw))
	}
}

func TestLargerBatchesCompressBetter(t *testing.T) {
	// Per-sample bytes should fall as batch size grows (header amortizes,
	// wavelet sparsity improves): the mechanism behind Figure 2's downward
	// slope for compressed batched push.
	b := Batch{Mode: WaveletDenoise, Threshold: 0.3}
	small := smoothSeries(32)
	large := smoothSeries(1024)
	encS, _ := b.Encode(small)
	encL, _ := b.Encode(large)
	perS := float64(len(encS)) / 32
	perL := float64(len(encL)) / 1024
	if perL >= perS {
		t.Fatalf("per-sample bytes: small=%.2f large=%.2f; want large < small", perS, perL)
	}
}

func TestBatchDefaults(t *testing.T) {
	// Zero Quantum/Threshold fall back to sane defaults rather than erroring.
	if _, err := (Batch{Mode: Delta}).Encode([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := (Batch{Mode: WaveletDenoise}).Encode([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchUnknownMode(t *testing.T) {
	if _, err := (Batch{Mode: Mode(9)}).Encode([]float64{1}); err == nil {
		t.Fatal("unknown mode should fail")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("empty buffer should fail")
	}
	if _, err := Decode([]byte{0x7f, 1, 2}); err == nil {
		t.Fatal("unknown tag should fail")
	}
	if _, err := Decode([]byte{0x01, 1}); err == nil {
		t.Fatal("short raw should fail")
	}
	if _, err := Decode([]byte{0x01, 10, 0, 0, 0}); err == nil {
		t.Fatal("raw with missing samples should fail")
	}
}

func TestModeString(t *testing.T) {
	if Raw.String() != "raw" || Delta.String() != "delta" {
		t.Error("mode names wrong")
	}
	if !strings.Contains(WaveletDenoise.String(), "wavelet") {
		t.Error("wavelet mode name wrong")
	}
	if !strings.Contains(Mode(42).String(), "42") {
		t.Error("unknown mode name wrong")
	}
}

func TestRatio(t *testing.T) {
	xs := smoothSeries(256)
	r, err := Batch{Mode: WaveletDenoise, Threshold: 0.5}.Ratio(xs)
	if err != nil {
		t.Fatal(err)
	}
	if r >= 1 {
		t.Fatalf("wavelet ratio %g, want < 1", r)
	}
	r, err = Batch{Mode: Raw}.Ratio(xs)
	if err != nil || r < 1 {
		t.Fatalf("raw ratio %g, want >= 1", r)
	}
	r, err = Batch{Mode: Raw}.Ratio(nil)
	if err != nil || r != 1 {
		t.Fatalf("empty ratio %g, want 1", r)
	}
}

// Property: delta round trip error bounded by q/2 for any signal & quantum.
func TestPropertyDeltaErrorBound(t *testing.T) {
	f := func(raw []int16, qSel uint8) bool {
		q := 0.01 * float64(1+int(qSel)%100)
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r) / 7
		}
		buf, err := DeltaEncode(xs, q)
		if err != nil {
			return false
		}
		got, err := DeltaDecode(buf)
		if err != nil || len(got) != len(xs) {
			return false
		}
		return maxErr(got, xs) <= q/2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: every mode's Encode/Decode round-trips length exactly.
func TestPropertyLengthPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(500)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 30
		}
		for _, m := range []Mode{Raw, Delta, WaveletDenoise} {
			enc, err := Batch{Mode: m, Quantum: 0.05, Threshold: 0.5}.Encode(xs)
			if err != nil {
				t.Fatalf("mode %v: %v", m, err)
			}
			got, err := Decode(enc)
			if err != nil {
				t.Fatalf("mode %v decode: %v", m, err)
			}
			if len(got) != n {
				t.Fatalf("mode %v: length %d, want %d", m, len(got), n)
			}
		}
	}
}

// Property: DecodeBound's claimed bound actually covers the round-trip
// error of every sample, and only codecs with a wire-visible bound claim
// a finite one.
func TestDecodeBound(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	xs := make([]float64, 64)
	for i := range xs {
		xs[i] = 20 + rng.NormFloat64()*3
	}
	for _, tc := range []struct {
		mode  Mode
		bound float64 // expected claim; NaN = must be +Inf
	}{
		{Raw, 0},
		// The quantum rides the wire as float32; the honest bound is half
		// of what the decoder actually reads back.
		{Delta, float64(float32(0.05)) / 2},
		{WaveletDenoise, math.Inf(1)},
	} {
		enc, err := Batch{Mode: tc.mode, Quantum: 0.05, Threshold: 0.5}.Encode(xs)
		if err != nil {
			t.Fatalf("mode %v: %v", tc.mode, err)
		}
		got := DecodeBound(enc)
		if got != tc.bound && !(math.IsInf(tc.bound, 1) && math.IsInf(got, 1)) {
			t.Fatalf("mode %v: bound %v, want %v", tc.mode, got, tc.bound)
		}
		if math.IsInf(got, 1) {
			continue
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Fatal(err)
		}
		for i := range dec {
			if e := math.Abs(dec[i] - xs[i]); e > got+1e-6 {
				t.Fatalf("mode %v sample %d: error %v exceeds claimed bound %v", tc.mode, i, e, got)
			}
		}
	}
	if !math.IsInf(DecodeBound(nil), 1) {
		t.Fatal("empty buffer must claim an unbounded error")
	}
}

func BenchmarkDeltaEncode1k(b *testing.B) {
	xs := smoothSeries(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DeltaEncode(xs, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWaveletEncode1k(b *testing.B) {
	xs := smoothSeries(1000)
	enc := Batch{Mode: WaveletDenoise, Threshold: 0.5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(xs); err != nil {
			b.Fatal(err)
		}
	}
}
