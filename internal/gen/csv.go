package gen

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"time"

	"presto/internal/simtime"
)

// ErrNoSamples is returned by FromCSV when no row in the file yields a
// parsable value in the requested column — the typed form lets callers
// distinguish "wrong column" from a malformed file.
var ErrNoSamples = errors.New("gen: csv contained no parsable samples")

// FromCSV reads a trace from CSV so real-world data (e.g. the Intel Lab
// trace this repository's generator substitutes for) can drive the
// simulator. Expected layout: a header row, then one sample per row with
// the value in column valueCol. Rows are assumed regularly spaced at
// interval; blank or unparsable values repeat the previous sample (the
// Intel Lab trace has gaps and real deployments lose samples).
func FromCSV(r io.Reader, valueCol int, interval time.Duration) (*Trace, error) {
	if valueCol < 0 {
		return nil, fmt.Errorf("gen: negative value column %d", valueCol)
	}
	if interval <= 0 {
		return nil, fmt.Errorf("gen: non-positive interval %v", interval)
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // ragged rows tolerated
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("gen: reading csv: %w", err)
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("gen: csv needs a header and at least one sample row")
	}
	tr := &Trace{Interval: interval}
	last := 0.0
	have := false
	skipped := 0
	for _, row := range rows[1:] {
		v := last
		if valueCol < len(row) {
			if parsed, err := strconv.ParseFloat(row[valueCol], 64); err == nil {
				v = parsed
				have = true
			}
		}
		if !have {
			// Leading gap before any valid sample: skip the rows rather
			// than inventing zeros, but remember how many were dropped so
			// the surviving samples keep their row-position timestamps.
			skipped++
			continue
		}
		tr.Values = append(tr.Values, v)
		last = v
	}
	if len(tr.Values) == 0 {
		return nil, fmt.Errorf("%w in column %d", ErrNoSamples, valueCol)
	}
	// Row i of the file stays at time i*interval even when leading rows
	// were unparsable; otherwise every sample would silently shift earlier
	// by the length of the leading gap.
	tr.Start = simtime.Time(skipped) * simtime.Time(interval)
	return tr, nil
}
