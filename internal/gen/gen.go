// Package gen synthesizes the sensor workloads the paper evaluates on.
//
// The Intel Lab trace [11] used for Figure 2 is not redistributable, so we
// generate statistically similar data: a diurnal temperature cycle with a
// slow seasonal drift, spatially correlated offsets between nearby motes,
// AR(1) measurement noise, and Poisson-arriving "rare events" (the
// unpredictable excursions that motivate model-driven push). Generators for
// the paper's other motivating domains — elder-care activity monitoring and
// commuter traffic — share the same structure: strongly periodic baselines
// plus occasional anomalies.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"presto/internal/simtime"
)

// Trace is a regularly sampled time series for one sensor. Sample i was
// taken at Start + i*Interval.
type Trace struct {
	Start    simtime.Time
	Interval time.Duration
	Values   []float64
	// Events marks the sample indices at which an injected rare event was
	// active (ground truth for detection experiments).
	Events []EventMark
}

// EventMark records one injected anomaly.
type EventMark struct {
	Index  int     // first affected sample
	Length int     // affected samples
	Peak   float64 // peak excursion added to the baseline
}

// At returns the sample timestamp for index i.
func (tr *Trace) At(i int) simtime.Time {
	return tr.Start + simtime.Time(i)*simtime.Time(tr.Interval)
}

// IndexAt returns the sample index covering time t, clamped to the trace.
func (tr *Trace) IndexAt(t simtime.Time) int {
	if len(tr.Values) == 0 {
		return 0
	}
	i := int((t - tr.Start) / simtime.Time(tr.Interval))
	if i < 0 {
		i = 0
	}
	if i >= len(tr.Values) {
		i = len(tr.Values) - 1
	}
	return i
}

// Value returns the sample value at time t (nearest earlier sample).
func (tr *Trace) Value(t simtime.Time) float64 {
	if len(tr.Values) == 0 {
		return 0
	}
	return tr.Values[tr.IndexAt(t)]
}

// Duration returns the covered time span.
func (tr *Trace) Duration() time.Duration {
	return time.Duration(len(tr.Values)) * tr.Interval
}

// EventActive reports whether an injected event is active at sample i.
func (tr *Trace) EventActive(i int) bool {
	for _, e := range tr.Events {
		if i >= e.Index && i < e.Index+e.Length {
			return true
		}
	}
	return false
}

// TempConfig parameterizes the temperature generator.
type TempConfig struct {
	Sensors  int           // number of co-located motes
	Days     int           // trace length
	Interval time.Duration // sampling period (Intel Lab epoch ~31 s; we default 60 s)

	BaseC        float64 // mean temperature
	DiurnalAmpC  float64 // day/night swing amplitude
	SeasonalAmpC float64 // slow drift amplitude over the trace
	NoiseStd     float64 // AR(1) noise innovation std
	NoiseRho     float64 // AR(1) coefficient in [0,1)
	SpatialStd   float64 // per-sensor constant offset std (nearby sensors correlate)

	EventsPerDay float64       // Poisson rate of rare events per sensor
	EventAmpC    float64       // mean event peak amplitude
	EventDur     time.Duration // mean event duration

	Seed int64
}

// DefaultTempConfig models an indoor deployment: 22 °C base, 4 °C diurnal
// swing, small correlated noise, one rare event every two days.
func DefaultTempConfig() TempConfig {
	return TempConfig{
		Sensors:      1,
		Days:         7,
		Interval:     time.Minute,
		BaseC:        22,
		DiurnalAmpC:  4,
		SeasonalAmpC: 1.5,
		NoiseStd:     0.15,
		NoiseRho:     0.8,
		SpatialStd:   0.5,
		EventsPerDay: 0.5,
		EventAmpC:    6,
		EventDur:     20 * time.Minute,
		Seed:         1,
	}
}

// Validate reports configuration errors.
func (c TempConfig) Validate() error {
	switch {
	case c.Sensors <= 0:
		return fmt.Errorf("gen: Sensors must be positive, got %d", c.Sensors)
	case c.Days <= 0:
		return fmt.Errorf("gen: Days must be positive, got %d", c.Days)
	case c.Interval <= 0:
		return fmt.Errorf("gen: Interval must be positive, got %v", c.Interval)
	case c.NoiseRho < 0 || c.NoiseRho >= 1:
		return fmt.Errorf("gen: NoiseRho %g outside [0,1)", c.NoiseRho)
	case c.EventsPerDay < 0:
		return fmt.Errorf("gen: negative EventsPerDay")
	}
	return nil
}

// Temperature generates one trace per sensor.
func Temperature(c TempConfig) ([]*Trace, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	samplesPerDay := int(24 * time.Hour / c.Interval)
	n := samplesPerDay * c.Days
	traces := make([]*Trace, c.Sensors)
	for s := 0; s < c.Sensors; s++ {
		offset := rng.NormFloat64() * c.SpatialStd
		phase := rng.Float64() * 0.2 // slight per-sensor phase shift
		tr := &Trace{Interval: c.Interval, Values: make([]float64, n)}
		ar := 0.0
		for i := 0; i < n; i++ {
			dayFrac := float64(i%samplesPerDay) / float64(samplesPerDay)
			tod := c.DiurnalAmpC * math.Sin(2*math.Pi*(dayFrac+phase)-math.Pi/2)
			seasonal := c.SeasonalAmpC * math.Sin(2*math.Pi*float64(i)/float64(n))
			ar = c.NoiseRho*ar + rng.NormFloat64()*c.NoiseStd
			tr.Values[i] = c.BaseC + offset + tod + seasonal + ar
		}
		injectEvents(rng, tr, c.EventsPerDay*float64(c.Days), c.EventAmpC, int(c.EventDur/c.Interval))
		traces[s] = tr
	}
	return traces, nil
}

// injectEvents adds expected-count Poisson-many half-sine excursions.
func injectEvents(rng *rand.Rand, tr *Trace, expected, amp float64, durSamples int) {
	if expected <= 0 || durSamples < 1 || len(tr.Values) == 0 {
		return
	}
	count := poisson(rng, expected)
	for e := 0; e < count; e++ {
		start := rng.Intn(len(tr.Values))
		length := durSamples/2 + rng.Intn(durSamples+1)
		if length < 1 {
			length = 1
		}
		peak := amp * (0.7 + 0.6*rng.Float64())
		if rng.Intn(2) == 0 {
			peak = -peak
		}
		for i := 0; i < length && start+i < len(tr.Values); i++ {
			// Half-sine pulse shape.
			tr.Values[start+i] += peak * math.Sin(math.Pi*float64(i)/float64(length))
		}
		tr.Events = append(tr.Events, EventMark{Index: start, Length: length, Peak: peak})
	}
}

// RegionalConfig parameterizes correlated regional events: excursions
// that hit every sensor in a region at the same instant (a heat front
// crossing a neighbourhood, a power cut darkening a block). Per-sensor
// events model local anomalies; regional events are what make "did
// something happen over there" aggregates interesting at city scale.
type RegionalConfig struct {
	EventsPerDay float64       // Poisson rate of events per region
	Days         int           // event-window length
	Amp          float64       // mean peak excursion added to the baseline
	Dur          time.Duration // mean event duration
	Seed         int64
}

// InjectRegionalEvents adds Poisson-arriving half-sine excursions to
// every trace of each region simultaneously: one event start, length and
// sign per region-event, shared across the region's members with a small
// deterministic per-member amplitude spread. Each member trace records
// the event in its Events ground truth. Traces within a region may have
// different intervals; the event is placed in time and converted to each
// member's sample index.
func InjectRegionalEvents(traces []*Trace, regions [][]int, c RegionalConfig) error {
	if c.EventsPerDay < 0 || c.Days <= 0 {
		return fmt.Errorf("gen: invalid regional config %+v", c)
	}
	if c.EventsPerDay == 0 || c.Amp == 0 || c.Dur <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(c.Seed))
	window := time.Duration(c.Days) * 24 * time.Hour
	for _, region := range regions {
		count := poisson(rng, c.EventsPerDay*float64(c.Days))
		for e := 0; e < count; e++ {
			at := time.Duration(rng.Int63n(int64(window)))
			dur := c.Dur/2 + time.Duration(rng.Int63n(int64(c.Dur)+1))
			peak := c.Amp * (0.7 + 0.6*rng.Float64())
			if rng.Intn(2) == 0 {
				peak = -peak
			}
			for _, ti := range region {
				if ti < 0 || ti >= len(traces) {
					return fmt.Errorf("gen: region member %d outside %d traces", ti, len(traces))
				}
				tr := traces[ti]
				if len(tr.Values) == 0 {
					continue
				}
				// Slight per-member spread, deterministic in (member, event).
				scale := 0.85 + 0.3*rng.Float64()
				start := int((simtime.Time(at) - tr.Start) / simtime.Time(tr.Interval))
				length := int(dur / tr.Interval)
				if length < 1 {
					length = 1
				}
				if start >= len(tr.Values) {
					continue
				}
				if start < 0 {
					start = 0
				}
				for i := 0; i < length && start+i < len(tr.Values); i++ {
					tr.Values[start+i] += peak * scale * math.Sin(math.Pi*float64(i)/float64(length))
				}
				tr.Events = append(tr.Events, EventMark{Index: start, Length: length, Peak: peak * scale})
			}
		}
	}
	return nil
}

// poisson draws from Poisson(lambda) via Knuth's method (lambda is small
// in all our workloads).
func poisson(rng *rand.Rand, lambda float64) int {
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 {
			return k // guard against pathological lambda
		}
	}
}

// ActivityConfig parameterizes the elder-care activity generator: step
// counts per interval following a strong daily routine (sleep, meals,
// walks) with rare anomalies (falls: sudden sustained inactivity at an
// unusual hour).
type ActivityConfig struct {
	Days     int
	Interval time.Duration
	Seed     int64
	// AnomaliesPerWeek is the rate of routine-break anomalies.
	AnomaliesPerWeek float64
}

// DefaultActivityConfig returns a week of 5-minute activity samples.
func DefaultActivityConfig() ActivityConfig {
	return ActivityConfig{Days: 7, Interval: 5 * time.Minute, Seed: 2, AnomaliesPerWeek: 1}
}

// Activity generates a daily-routine activity trace.
func Activity(c ActivityConfig) (*Trace, error) {
	if c.Days <= 0 || c.Interval <= 0 {
		return nil, fmt.Errorf("gen: invalid activity config %+v", c)
	}
	rng := rand.New(rand.NewSource(c.Seed))
	perDay := int(24 * time.Hour / c.Interval)
	n := perDay * c.Days
	tr := &Trace{Interval: c.Interval, Values: make([]float64, n)}
	for i := 0; i < n; i++ {
		hour := 24 * float64(i%perDay) / float64(perDay)
		base := routineLevel(hour)
		tr.Values[i] = math.Max(0, base*(0.8+0.4*rng.Float64()))
	}
	// Anomalies: unusual inactivity for 2-4 hours during daytime.
	count := poisson(rng, c.AnomaliesPerWeek*float64(c.Days)/7)
	for a := 0; a < count; a++ {
		day := rng.Intn(c.Days)
		startHour := 9 + rng.Intn(8)
		start := day*perDay + startHour*perDay/24
		length := (2 + rng.Intn(3)) * perDay / 24
		for i := 0; i < length && start+i < n; i++ {
			tr.Values[start+i] = 0
		}
		if start < n {
			tr.Events = append(tr.Events, EventMark{Index: start, Length: length, Peak: -routineLevel(float64(startHour))})
		}
	}
	return tr, nil
}

// routineLevel returns the expected activity (steps/interval) by hour of
// day: nights quiet, morning/evening peaks.
func routineLevel(hour float64) float64 {
	switch {
	case hour < 6 || hour >= 23:
		return 1 // sleeping
	case hour < 9:
		return 60 // morning routine
	case hour < 12:
		return 30
	case hour < 14:
		return 50 // lunch + walk
	case hour < 18:
		return 25
	case hour < 21:
		return 55 // evening activity
	default:
		return 15
	}
}

// TrafficConfig parameterizes the commuter-traffic generator: vehicle
// detections per interval with morning and evening rush peaks, near-zero
// nights, plus incident anomalies (sudden drops during rush).
type TrafficConfig struct {
	Days             int
	Interval         time.Duration
	PeakPerInterval  float64
	IncidentsPerWeek float64
	Seed             int64
}

// DefaultTrafficConfig returns a week of 5-minute vehicle counts.
func DefaultTrafficConfig() TrafficConfig {
	return TrafficConfig{Days: 7, Interval: 5 * time.Minute, PeakPerInterval: 120, IncidentsPerWeek: 2, Seed: 3}
}

// Traffic generates a commuter traffic trace.
func Traffic(c TrafficConfig) (*Trace, error) {
	if c.Days <= 0 || c.Interval <= 0 || c.PeakPerInterval < 0 {
		return nil, fmt.Errorf("gen: invalid traffic config %+v", c)
	}
	rng := rand.New(rand.NewSource(c.Seed))
	perDay := int(24 * time.Hour / c.Interval)
	n := perDay * c.Days
	tr := &Trace{Interval: c.Interval, Values: make([]float64, n)}
	for i := 0; i < n; i++ {
		hour := 24 * float64(i%perDay) / float64(perDay)
		day := (i / perDay) % 7
		weekend := day >= 5
		level := trafficLevel(hour, weekend) * c.PeakPerInterval
		// Poisson-ish counting noise.
		tr.Values[i] = math.Max(0, level+rng.NormFloat64()*math.Sqrt(level+1))
	}
	count := poisson(rng, c.IncidentsPerWeek*float64(c.Days)/7)
	for a := 0; a < count; a++ {
		day := rng.Intn(c.Days)
		startHour := []int{8, 17}[rng.Intn(2)]
		start := day*perDay + startHour*perDay/24
		length := perDay / 24 // one hour
		for i := 0; i < length && start+i < n; i++ {
			tr.Values[start+i] *= 0.15 // incident chokes flow
		}
		if start < n {
			tr.Events = append(tr.Events, EventMark{Index: start, Length: length, Peak: -c.PeakPerInterval})
		}
	}
	return tr, nil
}

// trafficLevel returns the relative flow (0..1) by hour.
func trafficLevel(hour float64, weekend bool) float64 {
	if weekend {
		// Single broad midday bump.
		return 0.15 + 0.35*math.Exp(-sq(hour-14)/18)
	}
	morning := 0.9 * math.Exp(-sq(hour-8)/2.5)
	evening := 1.0 * math.Exp(-sq(hour-17.5)/3.5)
	night := 0.03
	return night + morning + evening
}

func sq(x float64) float64 { return x * x }
