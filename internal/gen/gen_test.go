package gen

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"presto/internal/simtime"
	"presto/internal/stats"
)

func TestTemperatureBasics(t *testing.T) {
	c := DefaultTempConfig()
	c.Sensors = 3
	traces, err := Temperature(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 3 {
		t.Fatalf("got %d traces", len(traces))
	}
	wantLen := c.Days * 24 * 60
	for i, tr := range traces {
		if len(tr.Values) != wantLen {
			t.Fatalf("trace %d has %d samples, want %d", i, len(tr.Values), wantLen)
		}
		m := stats.Mean(tr.Values)
		if math.Abs(m-c.BaseC) > 3 {
			t.Fatalf("trace %d mean %.2f far from base %.2f", i, m, c.BaseC)
		}
	}
}

func TestTemperatureDeterministic(t *testing.T) {
	c := DefaultTempConfig()
	a, _ := Temperature(c)
	b, _ := Temperature(c)
	for i := range a[0].Values {
		if a[0].Values[i] != b[0].Values[i] {
			t.Fatalf("same seed diverged at sample %d", i)
		}
	}
	c.Seed = 99
	d, _ := Temperature(c)
	same := true
	for i := range a[0].Values {
		if a[0].Values[i] != d[0].Values[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestTemperatureDiurnalCycle(t *testing.T) {
	c := DefaultTempConfig()
	c.NoiseStd = 0.01
	c.EventsPerDay = 0
	c.SeasonalAmpC = 0
	traces, _ := Temperature(c)
	vals := traces[0].Values
	perDay := 24 * 60
	// Autocorrelation at 24h lag should be strong for a diurnal signal.
	if ac := stats.Autocorrelation(vals, perDay); ac < 0.8 {
		t.Fatalf("24h autocorrelation %.3f, want > 0.8", ac)
	}
	// Day/night swing should be about 2*DiurnalAmpC.
	lo, hi, _ := stats.MinMax(vals[:perDay])
	swing := hi - lo
	if swing < 1.5*c.DiurnalAmpC || swing > 2.5*c.DiurnalAmpC {
		t.Fatalf("diurnal swing %.2f, want ~%.2f", swing, 2*c.DiurnalAmpC)
	}
}

func TestTemperatureEventsRecorded(t *testing.T) {
	c := DefaultTempConfig()
	c.Days = 30
	c.EventsPerDay = 1
	traces, _ := Temperature(c)
	tr := traces[0]
	if len(tr.Events) == 0 {
		t.Fatal("30 days at 1 event/day produced no events")
	}
	for _, e := range tr.Events {
		if e.Index < 0 || e.Index >= len(tr.Values) {
			t.Fatalf("event index %d out of range", e.Index)
		}
		if !tr.EventActive(e.Index) {
			t.Fatal("EventActive false at event start")
		}
	}
	if tr.EventActive(-1) {
		t.Fatal("EventActive(-1)")
	}
}

func TestTemperatureValidate(t *testing.T) {
	bad := []func(*TempConfig){
		func(c *TempConfig) { c.Sensors = 0 },
		func(c *TempConfig) { c.Days = 0 },
		func(c *TempConfig) { c.Interval = 0 },
		func(c *TempConfig) { c.NoiseRho = 1.0 },
		func(c *TempConfig) { c.NoiseRho = -0.1 },
		func(c *TempConfig) { c.EventsPerDay = -1 },
	}
	for i, mutate := range bad {
		c := DefaultTempConfig()
		mutate(&c)
		if _, err := Temperature(c); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestTraceAccessors(t *testing.T) {
	tr := &Trace{Start: simtime.Hour, Interval: time.Minute, Values: []float64{1, 2, 3}}
	if tr.At(0) != simtime.Hour || tr.At(2) != simtime.Hour+2*simtime.Minute {
		t.Error("At wrong")
	}
	if got := tr.IndexAt(simtime.Hour + simtime.Time(90*time.Second)); got != 1 {
		t.Errorf("IndexAt mid-sample wrong: %d", got)
	}
	if tr.IndexAt(0) != 0 {
		t.Error("IndexAt before start should clamp to 0")
	}
	if tr.IndexAt(simtime.Day) != 2 {
		t.Error("IndexAt after end should clamp to last")
	}
	if tr.Value(simtime.Hour+simtime.Minute) != 2 {
		t.Error("Value wrong")
	}
	if tr.Duration() != 3*time.Minute {
		t.Errorf("Duration=%v", tr.Duration())
	}
	empty := &Trace{Interval: time.Minute}
	if empty.Value(0) != 0 || empty.IndexAt(0) != 0 {
		t.Error("empty trace accessors should be safe")
	}
}

func TestActivityRoutine(t *testing.T) {
	c := DefaultActivityConfig()
	c.AnomaliesPerWeek = 0
	tr, err := Activity(c)
	if err != nil {
		t.Fatal(err)
	}
	perDay := int(24 * time.Hour / c.Interval)
	if len(tr.Values) != perDay*c.Days {
		t.Fatalf("len=%d", len(tr.Values))
	}
	// Nights (3am) should be much quieter than mornings (7-8am).
	var night, morning float64
	for d := 0; d < c.Days; d++ {
		night += tr.Values[d*perDay+3*perDay/24]
		morning += tr.Values[d*perDay+7*perDay/24]
	}
	if night >= morning/5 {
		t.Fatalf("night=%f morning=%f; routine structure missing", night, morning)
	}
	// Daily periodicity.
	if ac := stats.Autocorrelation(tr.Values, perDay); ac < 0.6 {
		t.Fatalf("daily autocorrelation %.3f too weak", ac)
	}
}

func TestActivityAnomalies(t *testing.T) {
	c := DefaultActivityConfig()
	c.Days = 28
	c.AnomaliesPerWeek = 3
	tr, err := Activity(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) == 0 {
		t.Fatal("4 weeks at 3 anomalies/week produced none")
	}
	for _, e := range tr.Events {
		if tr.Values[e.Index] != 0 {
			t.Fatal("anomaly should zero activity")
		}
	}
}

func TestActivityInvalid(t *testing.T) {
	if _, err := Activity(ActivityConfig{Days: 0, Interval: time.Minute}); err == nil {
		t.Fatal("zero days accepted")
	}
}

func TestTrafficRushHours(t *testing.T) {
	c := DefaultTrafficConfig()
	c.IncidentsPerWeek = 0
	tr, err := Traffic(c)
	if err != nil {
		t.Fatal(err)
	}
	perDay := int(24 * time.Hour / c.Interval)
	// Weekday 8am >> weekday 3am.
	rush := tr.Values[8*perDay/24]
	night := tr.Values[3*perDay/24]
	if rush < 5*night+1 {
		t.Fatalf("rush=%f night=%f; rush-hour structure missing", rush, night)
	}
	// Weekend (day 5) rush should be lower than weekday rush.
	weekendRush := tr.Values[5*perDay+8*perDay/24]
	if weekendRush > rush {
		t.Fatalf("weekend rush %f > weekday rush %f", weekendRush, rush)
	}
	// Counts are non-negative.
	for i, v := range tr.Values {
		if v < 0 {
			t.Fatalf("negative count at %d: %f", i, v)
		}
	}
}

func TestTrafficIncidents(t *testing.T) {
	c := DefaultTrafficConfig()
	c.Days = 28
	c.IncidentsPerWeek = 4
	tr, err := Traffic(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) == 0 {
		t.Fatal("no incidents generated")
	}
}

func TestTrafficInvalid(t *testing.T) {
	if _, err := Traffic(TrafficConfig{Days: 1, Interval: 0}); err == nil {
		t.Fatal("zero interval accepted")
	}
}

func TestPoissonMean(t *testing.T) {
	// Sample mean of Poisson(4) over many draws should be near 4.
	rng := rand.New(rand.NewSource(12345))
	var sum int
	const trials = 2000
	for i := 0; i < trials; i++ {
		sum += poisson(rng, 4)
	}
	mean := float64(sum) / trials
	if math.Abs(mean-4) > 0.3 {
		t.Fatalf("poisson mean %.3f, want ~4", mean)
	}
	if poisson(rng, 0) != 0 {
		t.Fatal("poisson(0) should be 0 almost surely")
	}
}
