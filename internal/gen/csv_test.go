package gen

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestFromCSV(t *testing.T) {
	in := "epoch,temp\n0,20.5\n1,20.7\n2,21.0\n"
	tr, err := FromCSV(strings.NewReader(in), 1, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Values) != 3 || tr.Values[0] != 20.5 || tr.Values[2] != 21.0 {
		t.Fatalf("values %v", tr.Values)
	}
	if tr.Interval != time.Minute {
		t.Fatalf("interval %v", tr.Interval)
	}
}

func TestFromCSVGapsRepeatPrevious(t *testing.T) {
	in := "epoch,temp\n0,20.5\n1,\n2,not-a-number\n3,21.0\n"
	tr, err := FromCSV(strings.NewReader(in), 1, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{20.5, 20.5, 20.5, 21.0}
	for i, v := range want {
		if tr.Values[i] != v {
			t.Fatalf("values %v, want %v", tr.Values, want)
		}
	}
}

func TestFromCSVRaggedRows(t *testing.T) {
	in := "a,b,c\n1,20\n2,21,extra\n"
	tr, err := FromCSV(strings.NewReader(in), 1, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Values) != 2 || tr.Values[1] != 21 {
		t.Fatalf("values %v", tr.Values)
	}
}

func TestFromCSVErrors(t *testing.T) {
	if _, err := FromCSV(strings.NewReader("h\n1\n"), -1, time.Minute); err == nil {
		t.Error("negative column accepted")
	}
	if _, err := FromCSV(strings.NewReader("h\n1\n"), 0, 0); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := FromCSV(strings.NewReader("header-only\n"), 0, time.Minute); err == nil {
		t.Error("header-only csv accepted")
	}
	if _, err := FromCSV(strings.NewReader("h\nx\ny\n"), 0, time.Minute); err == nil {
		t.Error("no parsable samples accepted")
	}
}

func TestFromCSVRoundTripWithPrestogenFormat(t *testing.T) {
	// The prestogen CSV format reads back in directly.
	cfg := DefaultTempConfig()
	cfg.Days = 1
	traces, err := Temperature(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString("minute,sensor0_c,event_active\n")
	for i, v := range traces[0].Values {
		b.WriteString(strings.Join([]string{
			itoa(i), ftoa(v), "0",
		}, ","))
		b.WriteByte('\n')
	}
	tr, err := FromCSV(strings.NewReader(b.String()), 1, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Values) != len(traces[0].Values) {
		t.Fatalf("len %d vs %d", len(tr.Values), len(traces[0].Values))
	}
	for i := range tr.Values {
		if d := tr.Values[i] - traces[0].Values[i]; d > 0.001 || d < -0.001 {
			t.Fatalf("sample %d: %v vs %v", i, tr.Values[i], traces[0].Values[i])
		}
	}
}

func itoa(i int) string { return strconv.Itoa(i) }

func ftoa(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
