package gen

import (
	"errors"
	"strconv"
	"strings"
	"testing"
	"time"

	"presto/internal/simtime"
)

func TestFromCSV(t *testing.T) {
	in := "epoch,temp\n0,20.5\n1,20.7\n2,21.0\n"
	tr, err := FromCSV(strings.NewReader(in), 1, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Values) != 3 || tr.Values[0] != 20.5 || tr.Values[2] != 21.0 {
		t.Fatalf("values %v", tr.Values)
	}
	if tr.Interval != time.Minute {
		t.Fatalf("interval %v", tr.Interval)
	}
}

func TestFromCSVGapsRepeatPrevious(t *testing.T) {
	in := "epoch,temp\n0,20.5\n1,\n2,not-a-number\n3,21.0\n"
	tr, err := FromCSV(strings.NewReader(in), 1, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{20.5, 20.5, 20.5, 21.0}
	for i, v := range want {
		if tr.Values[i] != v {
			t.Fatalf("values %v, want %v", tr.Values, want)
		}
	}
}

func TestFromCSVRaggedRows(t *testing.T) {
	in := "a,b,c\n1,20\n2,21,extra\n"
	tr, err := FromCSV(strings.NewReader(in), 1, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Values) != 2 || tr.Values[1] != 21 {
		t.Fatalf("values %v", tr.Values)
	}
}

func TestFromCSVErrors(t *testing.T) {
	if _, err := FromCSV(strings.NewReader("h\n1\n"), -1, time.Minute); err == nil {
		t.Error("negative column accepted")
	}
	if _, err := FromCSV(strings.NewReader("h\n1\n"), 0, 0); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := FromCSV(strings.NewReader("header-only\n"), 0, time.Minute); err == nil {
		t.Error("header-only csv accepted")
	}
	if _, err := FromCSV(strings.NewReader("h\nx\ny\n"), 0, time.Minute); !errors.Is(err, ErrNoSamples) {
		t.Errorf("no parsable samples: got %v, want ErrNoSamples", err)
	}
}

// TestFromCSVLeadingBadRowsKeepTimeBase: blank/unparsable rows before the
// first valid sample are skipped (no invented zeros), but the surviving
// samples must keep the timestamps their row positions imply — row i of
// the file lives at i*interval whether or not earlier rows parsed.
func TestFromCSVLeadingBadRowsKeepTimeBase(t *testing.T) {
	in := "epoch,temp\n0,\n1,not-a-number\n2,21.0\n3,21.5\n"
	tr, err := FromCSV(strings.NewReader(in), 1, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Values) != 2 || tr.Values[0] != 21.0 || tr.Values[1] != 21.5 {
		t.Fatalf("values %v, want [21 21.5]", tr.Values)
	}
	if want := 2 * simtime.Minute; tr.Start != want {
		t.Fatalf("trace starts at %v, want %v (two leading rows skipped)", tr.Start, want)
	}
	if got := tr.At(0); got != 2*simtime.Minute {
		t.Fatalf("first sample at %v, want 2m", got)
	}
	// Value() honours the shifted base: asking at the skipped rows' times
	// clamps to the first real sample instead of reading a phantom zero.
	if v := tr.Value(3 * simtime.Minute); v != 21.5 {
		t.Fatalf("Value(3m) = %v, want 21.5", v)
	}
	// A file with no leading gap still starts at zero.
	clean, err := FromCSV(strings.NewReader("epoch,temp\n0,20.0\n"), 1, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Start != 0 {
		t.Fatalf("clean trace starts at %v, want 0", clean.Start)
	}
}

func TestFromCSVRoundTripWithPrestogenFormat(t *testing.T) {
	// The prestogen CSV format reads back in directly.
	cfg := DefaultTempConfig()
	cfg.Days = 1
	traces, err := Temperature(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString("minute,sensor0_c,event_active\n")
	for i, v := range traces[0].Values {
		b.WriteString(strings.Join([]string{
			itoa(i), ftoa(v), "0",
		}, ","))
		b.WriteByte('\n')
	}
	tr, err := FromCSV(strings.NewReader(b.String()), 1, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Values) != len(traces[0].Values) {
		t.Fatalf("len %d vs %d", len(tr.Values), len(traces[0].Values))
	}
	for i := range tr.Values {
		if d := tr.Values[i] - traces[0].Values[i]; d > 0.001 || d < -0.001 {
			t.Fatalf("sample %d: %v vs %v", i, tr.Values[i], traces[0].Values[i])
		}
	}
}

func itoa(i int) string { return strconv.Itoa(i) }

func ftoa(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
