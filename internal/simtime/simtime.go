// Package simtime provides a deterministic discrete-event simulation kernel.
//
// All PRESTO experiments run on virtual time: a single-threaded event loop
// pops events from a binary heap ordered by (time, sequence number). The
// sequence number tie-break makes runs bit-for-bit reproducible for a given
// seed, which every experiment in this repository relies on.
package simtime

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"presto/internal/snap"
)

// Time is virtual time measured in nanoseconds since the start of the
// simulation. It is deliberately not time.Time: simulations start at zero
// and have no wall-clock meaning.
type Time int64

// Common duration helpers for readability in experiment code.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
	Hour             = 60 * Minute
	Day              = 24 * Hour
)

// Duration converts t to a time.Duration offset from the simulation start.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Minutes reports t as floating-point minutes.
func (t Time) Minutes() float64 { return float64(t) / float64(Minute) }

// Hours reports t as floating-point hours.
func (t Time) Hours() float64 { return float64(t) / float64(Hour) }

// String formats the time as a duration, e.g. "26h3m0s".
func (t Time) String() string { return time.Duration(t).String() }

// FromDuration converts a wall-style duration into virtual Time.
func FromDuration(d time.Duration) Time { return Time(d) }

// Handle identifies a scheduled event and allows cancellation.
// The zero Handle is invalid.
type Handle struct {
	ev *event
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. It reports whether the event was
// still pending.
func (h Handle) Cancel() bool {
	if h.ev == nil || h.ev.cancelled || h.ev.fired {
		return false
	}
	h.ev.cancelled = true
	return true
}

// Pending reports whether the event is still scheduled to fire.
func (h Handle) Pending() bool {
	return h.ev != nil && !h.ev.cancelled && !h.ev.fired
}

type event struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
	fired     bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Simulator is a deterministic discrete-event scheduler.
// It is not safe for concurrent use; wrap it (as core.Network does) if
// events must be injected from multiple goroutines.
type Simulator struct {
	now       Time
	events    eventHeap
	seq       uint64
	rng       *rand.Rand
	src       *snap.RNG // the serializable source behind rng
	processed uint64
	running   bool

	// nowSnapshot mirrors now for lock-free readers on other goroutines
	// (sharded deployments publish each domain's clock through it).
	nowSnapshot atomic.Int64
}

// New returns a simulator whose random source is seeded with seed. The
// source is a serializable xoshiro256** generator so Snapshot/Restore
// can externalize and reinstall its exact state.
func New(seed int64) *Simulator {
	src := snap.NewRNG(seed)
	return &Simulator{rng: rand.New(src), src: src}
}

// Now returns the current virtual time. It must only be called from the
// goroutine driving the simulator; concurrent readers use NowSnapshot.
func (s *Simulator) Now() Time { return s.now }

// NowSnapshot returns the clock as last published by the driving
// goroutine. Unlike Now it is safe to call from any goroutine: sharded
// deployments serve their Now() from this without taking any lock.
func (s *Simulator) NowSnapshot() Time { return Time(s.nowSnapshot.Load()) }

// setNow advances the clock and publishes the snapshot.
func (s *Simulator) setNow(t Time) {
	s.now = t
	s.nowSnapshot.Store(int64(t))
}

// Rand returns the simulator's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Processed reports how many events have fired so far.
func (s *Simulator) Processed() uint64 { return s.processed }

// Pending reports how many events are queued (including cancelled ones not
// yet reaped).
func (s *Simulator) Pending() int { return len(s.events) }

// Schedule arranges for fn to run after delay d. A negative delay is
// treated as zero (fires at the current time, after already-queued events
// for that time).
func (s *Simulator) Schedule(d time.Duration, fn func()) Handle {
	if d < 0 {
		d = 0
	}
	return s.ScheduleAt(s.now+Time(d), fn)
}

// ScheduleAt arranges for fn to run at absolute virtual time t.
// Scheduling in the past is clamped to the present.
func (s *Simulator) ScheduleAt(t Time, fn func()) Handle {
	if fn == nil {
		panic("simtime: ScheduleAt with nil function")
	}
	if t < s.now {
		t = s.now
	}
	s.seq++
	ev := &event{at: t, seq: s.seq, fn: fn}
	heap.Push(&s.events, ev)
	return Handle{ev: ev}
}

// Step fires the next event, advancing virtual time. It reports false when
// no events remain.
func (s *Simulator) Step() bool {
	for len(s.events) > 0 {
		ev := heap.Pop(&s.events).(*event)
		if ev.cancelled {
			continue
		}
		s.setNow(ev.at)
		ev.fired = true
		s.processed++
		ev.fn()
		return true
	}
	return false
}

// Run fires events until none remain.
func (s *Simulator) Run() {
	if s.running {
		panic("simtime: Run re-entered")
	}
	s.running = true
	defer func() { s.running = false }()
	for s.Step() {
	}
}

// RunUntil fires events with timestamps <= t, then sets the clock to t.
// Events scheduled beyond t remain queued.
func (s *Simulator) RunUntil(t Time) {
	if s.running {
		panic("simtime: RunUntil re-entered")
	}
	s.running = true
	defer func() { s.running = false }()
	for len(s.events) > 0 {
		// Peek at the next non-cancelled event.
		ev := s.events[0]
		if ev.cancelled {
			heap.Pop(&s.events)
			continue
		}
		if ev.at > t {
			break
		}
		heap.Pop(&s.events)
		s.setNow(ev.at)
		ev.fired = true
		s.processed++
		ev.fn()
	}
	if s.now < t {
		s.setNow(t)
	}
}

// RunFor advances the simulation by duration d.
func (s *Simulator) RunFor(d time.Duration) { s.RunUntil(s.now + Time(d)) }

// Ticker fires a callback at a fixed period until stopped.
type Ticker struct {
	sim     *Simulator
	period  Time
	fn      func()
	handle  Handle
	stopped bool
	// fireings is atomic so aggregate handles (core.RetrainTicker) can
	// read it while other shards' tickers are still firing.
	fireings atomic.Uint64
}

// Every schedules fn to run every period, with the first firing one full
// period from now. It panics on a non-positive period since that would
// wedge the event loop at a single instant.
func (s *Simulator) Every(period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("simtime: Every with non-positive period %v", period))
	}
	t := &Ticker{sim: s, period: Time(period), fn: fn}
	t.arm()
	return t
}

// EveryFrom behaves like Every but fires the first tick after initial delay.
func (s *Simulator) EveryFrom(initial, period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("simtime: EveryFrom with non-positive period %v", period))
	}
	if initial < 0 {
		initial = 0
	}
	t := &Ticker{sim: s, period: Time(period), fn: fn}
	t.handle = s.Schedule(initial, t.tick)
	return t
}

// EveryAt behaves like Every but arms the first firing at absolute
// virtual time next (clamped to the present). Restore paths use it to
// resume a snapshotted ticker exactly where it left off.
func (s *Simulator) EveryAt(next Time, period Time, fn func()) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("simtime: EveryAt with non-positive period %v", period))
	}
	t := &Ticker{sim: s, period: period, fn: fn}
	t.handle = s.ScheduleAt(next, t.tick)
	return t
}

func (t *Ticker) arm() {
	t.handle = t.sim.Schedule(time.Duration(t.period), t.tick)
}

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	t.fireings.Add(1)
	t.fn()
	if !t.stopped {
		t.arm()
	}
}

// Stop cancels future firings. Safe to call multiple times and from within
// the ticker's own callback.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.handle.Cancel()
}

// Firings reports how many times the ticker has fired. Safe for
// concurrent use.
func (t *Ticker) Firings() uint64 { return t.fireings.Load() }

// Period returns the ticker's firing period.
func (t *Ticker) Period() Time { return t.period }

// NextFire returns the absolute virtual time of the next scheduled
// firing, or -1 if the ticker is stopped (or its event is gone).
// Snapshot paths record this so a restored ticker resumes on the exact
// original schedule via EveryAt.
func (t *Ticker) NextFire() Time {
	if t.stopped || !t.handle.Pending() {
		return -1
	}
	return t.handle.ev.at
}

// RestoreFirings reinstalls a snapshotted firing count.
func (t *Ticker) RestoreFirings(n uint64) { t.fireings.Store(n) }
