package simtime

import (
	"fmt"
	"io"

	"presto/internal/snap"
)

// Snapshot externalizes the kernel state: the clock, the processed-event
// count, and the exact random-source state. Pending events are NOT
// serialized — they are closures, so each layer that owns scheduled work
// (radio flights, mote tickers, bridge deliveries) records its own
// pending work in its own snapshot and re-registers it on restore. The
// event sequence counter is likewise excluded: restored layers re-enter
// the heap in a fixed deterministic order, which preserves the relative
// firing order of same-instant events without pinning absolute sequence
// numbers (and keeps snapshot bytes identical across snapshot → restore
// → snapshot).
func (s *Simulator) Snapshot(w io.Writer) error {
	var e snap.Enc
	e.I64(int64(s.now))
	e.U64(s.processed)
	st := s.src.State()
	for _, v := range st {
		e.U64(v)
	}
	return snap.WriteBlock(w, snap.TagKernel, e.Data())
}

// Restore reinstalls kernel state captured by Snapshot. Any events in
// the heap are dropped — the caller restores a freshly built (quiescent)
// domain and each layer re-registers its own pending work afterwards,
// scheduling against the restored clock.
func (s *Simulator) Restore(r io.Reader) error {
	body, err := snap.ReadBlock(r, snap.TagKernel)
	if err != nil {
		return err
	}
	d := snap.NewDec(body)
	now := Time(d.I64())
	processed := d.U64()
	var st [4]uint64
	for i := range st {
		st[i] = d.U64()
	}
	if err := d.Done(); err != nil {
		return fmt.Errorf("simtime: %w", err)
	}
	s.events = nil
	s.seq = 0
	s.setNow(now)
	s.processed = processed
	s.src.SetState(st)
	return nil
}
