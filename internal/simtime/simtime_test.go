package simtime

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestZeroStart(t *testing.T) {
	s := New(1)
	if s.Now() != 0 {
		t.Fatalf("fresh simulator at %v, want 0", s.Now())
	}
	if s.Pending() != 0 || s.Processed() != 0 {
		t.Fatalf("fresh simulator has pending=%d processed=%d", s.Pending(), s.Processed())
	}
}

func TestScheduleOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.Schedule(3*time.Second, func() { order = append(order, 3) })
	s.Schedule(1*time.Second, func() { order = append(order, 1) })
	s.Schedule(2*time.Second, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fired in order %v, want [1 2 3]", order)
	}
	if s.Now() != 3*Second {
		t.Fatalf("clock at %v, want 3s", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(time.Second, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of order: %v", order)
		}
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	s := New(1)
	s.RunUntil(5 * Second)
	fired := false
	s.Schedule(-time.Hour, func() {
		fired = true
		if s.Now() != 5*Second {
			t.Errorf("negative-delay event at %v, want now (5s)", s.Now())
		}
	})
	s.Run()
	if !fired {
		t.Fatal("negative-delay event never fired")
	}
}

func TestScheduleAtPastClamped(t *testing.T) {
	s := New(1)
	s.RunUntil(10 * Second)
	var at Time
	s.ScheduleAt(3*Second, func() { at = s.Now() })
	s.Run()
	if at != 10*Second {
		t.Fatalf("past event fired at %v, want clamped to 10s", at)
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	h := s.Schedule(time.Second, func() { fired = true })
	if !h.Pending() {
		t.Fatal("handle should be pending before firing")
	}
	if !h.Cancel() {
		t.Fatal("first Cancel should report true")
	}
	if h.Cancel() {
		t.Fatal("second Cancel should report false")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if h.Pending() {
		t.Fatal("cancelled handle still pending")
	}
}

func TestCancelAfterFire(t *testing.T) {
	s := New(1)
	h := s.Schedule(time.Second, func() {})
	s.Run()
	if h.Cancel() {
		t.Fatal("Cancel after fire should report false")
	}
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	s := New(1)
	early, late := false, false
	s.Schedule(1*time.Second, func() { early = true })
	s.Schedule(10*time.Second, func() { late = true })
	s.RunUntil(5 * Second)
	if !early || late {
		t.Fatalf("early=%v late=%v after RunUntil(5s)", early, late)
	}
	if s.Now() != 5*Second {
		t.Fatalf("clock at %v, want exactly 5s", s.Now())
	}
	s.Run()
	if !late {
		t.Fatal("late event lost")
	}
}

func TestRunForAdvancesRelative(t *testing.T) {
	s := New(1)
	s.RunFor(2 * time.Second)
	s.RunFor(3 * time.Second)
	if s.Now() != 5*Second {
		t.Fatalf("clock at %v, want 5s", s.Now())
	}
}

func TestEventSchedulesEvent(t *testing.T) {
	s := New(1)
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 5 {
			s.Schedule(time.Second, recurse)
		}
	}
	s.Schedule(time.Second, recurse)
	s.Run()
	if depth != 5 {
		t.Fatalf("recursion depth %d, want 5", depth)
	}
	if s.Now() != 5*Second {
		t.Fatalf("clock at %v, want 5s", s.Now())
	}
}

func TestTicker(t *testing.T) {
	s := New(1)
	n := 0
	tk := s.Every(time.Minute, func() { n++ })
	s.RunUntil(10 * Minute)
	if n != 10 {
		t.Fatalf("ticker fired %d times in 10 min, want 10", n)
	}
	tk.Stop()
	s.RunUntil(20 * Minute)
	if n != 10 {
		t.Fatalf("stopped ticker kept firing: %d", n)
	}
	if tk.Firings() != 10 {
		t.Fatalf("Firings()=%d, want 10", tk.Firings())
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	s := New(1)
	n := 0
	var tk *Ticker
	tk = s.Every(time.Second, func() {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	s.RunUntil(Minute)
	if n != 3 {
		t.Fatalf("ticker fired %d times, want 3 (self-stop)", n)
	}
}

func TestEveryFrom(t *testing.T) {
	s := New(1)
	var first Time = -1
	s.EveryFrom(5*time.Second, time.Minute, func() {
		if first < 0 {
			first = s.Now()
		}
	})
	s.RunUntil(2 * Minute)
	if first != 5*Second {
		t.Fatalf("first firing at %v, want 5s", first)
	}
}

func TestEveryPanicsOnNonPositive(t *testing.T) {
	s := New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	s.Every(0, func() {})
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		s := New(seed)
		var fires []Time
		for i := 0; i < 100; i++ {
			d := time.Duration(s.Rand().Intn(1000)) * time.Millisecond
			s.Schedule(d, func() { fires = append(fires, s.Now()) })
		}
		s.Run()
		return fires
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at event %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTimeConversions(t *testing.T) {
	tt := 90 * Minute
	if tt.Hours() != 1.5 {
		t.Errorf("Hours()=%v, want 1.5", tt.Hours())
	}
	if tt.Minutes() != 90 {
		t.Errorf("Minutes()=%v, want 90", tt.Minutes())
	}
	if tt.Seconds() != 5400 {
		t.Errorf("Seconds()=%v, want 5400", tt.Seconds())
	}
	if tt.Duration() != 90*time.Minute {
		t.Errorf("Duration()=%v, want 90m", tt.Duration())
	}
	if FromDuration(time.Hour) != Hour {
		t.Errorf("FromDuration(1h) != Hour")
	}
	if tt.String() != "1h30m0s" {
		t.Errorf("String()=%q", tt.String())
	}
}

// Property: for any batch of delays, events fire in nondecreasing time order
// and the final clock equals the max delay.
func TestPropertyMonotonicFiring(t *testing.T) {
	f := func(delaysMs []uint16) bool {
		s := New(7)
		var fires []Time
		var max Time
		for _, ms := range delaysMs {
			d := time.Duration(ms) * time.Millisecond
			if Time(d) > max {
				max = Time(d)
			}
			s.Schedule(d, func() { fires = append(fires, s.Now()) })
		}
		s.Run()
		for i := 1; i < len(fires); i++ {
			if fires[i] < fires[i-1] {
				return false
			}
		}
		return len(delaysMs) == 0 || s.Now() == max
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling an arbitrary subset fires exactly the complement.
func TestPropertyCancelSubset(t *testing.T) {
	f := func(cancelMask []bool) bool {
		s := New(3)
		fired := make([]bool, len(cancelMask))
		handles := make([]Handle, len(cancelMask))
		for i := range cancelMask {
			i := i
			handles[i] = s.Schedule(time.Duration(i)*time.Millisecond, func() { fired[i] = true })
		}
		for i, c := range cancelMask {
			if c {
				handles[i].Cancel()
			}
		}
		s.Run()
		for i := range cancelMask {
			if fired[i] == cancelMask[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(13))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New(1)
		for j := 0; j < 1000; j++ {
			s.Schedule(time.Duration(j)*time.Millisecond, func() {})
		}
		s.Run()
	}
}

func TestNowSnapshotTracksClock(t *testing.T) {
	s := New(1)
	if s.NowSnapshot() != 0 {
		t.Fatalf("fresh snapshot %v", s.NowSnapshot())
	}
	s.Schedule(time.Second, func() {})
	s.Run()
	if s.NowSnapshot() != Second {
		t.Fatalf("snapshot %v after event, want 1s", s.NowSnapshot())
	}
	s.RunFor(2 * time.Second) // clamp with no events must also publish
	if s.NowSnapshot() != 3*Second || s.NowSnapshot() != s.Now() {
		t.Fatalf("snapshot %v, now %v, want both 3s", s.NowSnapshot(), s.Now())
	}
}
