package energy

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestMeterZeroValue(t *testing.T) {
	var m Meter
	if m.Total() != 0 {
		t.Fatalf("zero meter total %v", m.Total())
	}
	for c := Category(0); int(c) < NumCategories; c++ {
		if m.Get(c) != 0 || m.Events(c) != 0 {
			t.Fatalf("zero meter non-empty for %v", c)
		}
	}
}

func TestMeterAddAndTotal(t *testing.T) {
	var m Meter
	m.Add(RadioTx, 1.5)
	m.Add(RadioRx, 0.5)
	m.Add(CPU, 0.25)
	if got := m.Total(); math.Abs(got-2.25) > 1e-12 {
		t.Fatalf("total=%v, want 2.25", got)
	}
	if got := m.Radio(); math.Abs(got-2.0) > 1e-12 {
		t.Fatalf("radio=%v, want 2.0", got)
	}
	if m.Events(RadioTx) != 1 {
		t.Fatalf("events=%d, want 1", m.Events(RadioTx))
	}
}

func TestMeterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	var m Meter
	m.Add(CPU, -1)
}

func TestMeterInvalidCategoryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid category did not panic")
		}
	}()
	var m Meter
	m.Add(Category(99), 1)
}

func TestMeterAddFrom(t *testing.T) {
	var a, b Meter
	a.Add(RadioTx, 1)
	b.Add(RadioTx, 2)
	b.Add(FlashWrite, 3)
	a.AddFrom(&b)
	if a.Get(RadioTx) != 3 || a.Get(FlashWrite) != 3 {
		t.Fatalf("AddFrom wrong: tx=%v fw=%v", a.Get(RadioTx), a.Get(FlashWrite))
	}
	if a.Events(RadioTx) != 2 {
		t.Fatalf("events not merged: %d", a.Events(RadioTx))
	}
}

func TestMeterReset(t *testing.T) {
	var m Meter
	m.Add(Sensing, 5)
	m.Reset()
	if m.Total() != 0 {
		t.Fatalf("reset meter total %v", m.Total())
	}
}

func TestMeterString(t *testing.T) {
	var m Meter
	m.Add(RadioTx, 1)
	s := m.String()
	if !strings.Contains(s, "radio-tx") {
		t.Fatalf("String %q missing radio-tx", s)
	}
	if strings.Contains(s, "flash") {
		t.Fatalf("String %q includes zero category", s)
	}
}

func TestCategoryString(t *testing.T) {
	if RadioListen.String() != "radio-listen" {
		t.Errorf("RadioListen.String()=%q", RadioListen.String())
	}
	if !strings.Contains(Category(42).String(), "42") {
		t.Errorf("out-of-range category String: %q", Category(42).String())
	}
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.TxJPerByte = 0 },
		func(p *Params) { p.RxJPerByte = -1 },
		func(p *Params) { p.MaxPayload = 0 },
		func(p *Params) { p.HeaderBytes = -1 },
		func(p *Params) { p.ListenJPerCheck = -1 },
		func(p *Params) { p.CPUJPerCycle = -1 },
		func(p *Params) { p.SenseJPerSample = -1 },
	}
	for i, mutate := range cases {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: bad params passed Validate", i)
		}
	}
}

func TestFrames(t *testing.T) {
	p := DefaultParams()
	cases := []struct{ n, want int }{
		{0, 1}, {1, 1}, {96, 1}, {97, 2}, {192, 2}, {193, 3},
	}
	for _, c := range cases {
		if got := p.Frames(c.n); got != c.want {
			t.Errorf("Frames(%d)=%d, want %d", c.n, got, c.want)
		}
	}
}

func TestTxCostGrowsWithLPL(t *testing.T) {
	p := DefaultParams()
	short := p.TxCost(10, 100*time.Millisecond)
	long := p.TxCost(10, time.Second)
	if long <= short {
		t.Fatalf("preamble cost should grow with receiver LPL interval: %v vs %v", short, long)
	}
	// The difference should be exactly the preamble delta.
	wantDelta := p.PreambleJPerSecond * 0.9
	if math.Abs((long-short)-wantDelta) > 1e-9 {
		t.Fatalf("delta=%v, want %v", long-short, wantDelta)
	}
}

func TestTxCostBatchingAmortizesOverhead(t *testing.T) {
	// Core premise of Figure 2: sending n samples in one batch costs less
	// than n separate packets, because preamble+header+ack amortize.
	p := DefaultParams()
	lpl := 500 * time.Millisecond
	single := p.TxCost(4, lpl)
	batched := p.TxCost(4*100, lpl)
	if batched >= 100*single {
		t.Fatalf("batching not cheaper: batched=%v, 100 singles=%v", batched, 100*single)
	}
	// Savings should be substantial (>50%) given preamble dominance.
	if batched > 0.5*100*single {
		t.Fatalf("batching saved too little: batched=%v vs %v", batched, 100*single)
	}
}

func TestRxCost(t *testing.T) {
	p := DefaultParams()
	got := p.RxCost(10)
	want := float64(10+p.HeaderBytes)*p.RxJPerByte + float64(p.AckBytes)*p.TxJPerByte
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("RxCost=%v, want %v", got, want)
	}
}

func TestListenCost(t *testing.T) {
	p := DefaultParams()
	if p.ListenCost(0, time.Second) != 0 {
		t.Error("zero elapsed should cost zero")
	}
	// Halving the check interval doubles idle cost.
	a := p.ListenCost(time.Hour, time.Second)
	b := p.ListenCost(time.Hour, 500*time.Millisecond)
	if math.Abs(b-2*a) > 1e-9 {
		t.Fatalf("listen cost not inverse in interval: %v vs %v", a, b)
	}
	// Always-on radio costs much more than duty-cycled.
	on := p.ListenCost(time.Hour, 0)
	if on <= b {
		t.Fatalf("always-on (%v) should exceed duty-cycled (%v)", on, b)
	}
}

func TestRadioDominatesComputeAndStorage(t *testing.T) {
	// The technology-trend claim in the paper (section 1): communication
	// is ~2 orders of magnitude more expensive than storage and ~4 more
	// than computation. Verify our constants encode that hierarchy.
	p := DefaultParams()
	radioPerByte := p.TxJPerByte
	flashPerByte := p.FlashWriteJPerByte
	cpuPerCycle := p.CPUJPerCycle
	if radioPerByte < 1.5*flashPerByte {
		t.Fatalf("radio (%g) should cost well above flash (%g)", radioPerByte, flashPerByte)
	}
	if radioPerByte < 1000*cpuPerCycle {
		t.Fatalf("radio (%g) should dwarf cpu (%g)", radioPerByte, cpuPerCycle)
	}
}

func TestLifetime(t *testing.T) {
	// 1 J/day burn on a 20 kJ battery: 20000 days.
	lt := Lifetime(AABatteryJ, 1.0, 24*time.Hour)
	days := lt.Hours() / 24
	if math.Abs(days-20000) > 1 {
		t.Fatalf("lifetime %v days, want ~20000", days)
	}
	if Lifetime(AABatteryJ, 0, time.Hour) <= 0 {
		t.Fatal("zero spend should report effectively-infinite lifetime")
	}
}

// Property: TxCost is monotone in payload size and LPL interval.
func TestPropertyTxCostMonotone(t *testing.T) {
	p := DefaultParams()
	f := func(n1, n2 uint16, lplMs1, lplMs2 uint16) bool {
		a, b := int(n1), int(n2)
		if a > b {
			a, b = b, a
		}
		l1, l2 := time.Duration(lplMs1)*time.Millisecond, time.Duration(lplMs2)*time.Millisecond
		if l1 > l2 {
			l1, l2 = l2, l1
		}
		return p.TxCost(a, l1) <= p.TxCost(b, l1)+1e-12 &&
			p.TxCost(a, l1) <= p.TxCost(a, l2)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: meter total always equals the sum of categories.
func TestPropertyMeterTotal(t *testing.T) {
	f := func(charges []uint8) bool {
		var m Meter
		for i, c := range charges {
			m.Add(Category(i%NumCategories), float64(c))
		}
		var sum float64
		for c := Category(0); int(c) < NumCategories; c++ {
			sum += m.Get(c)
		}
		return math.Abs(sum-m.Total()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
