// Package energy provides per-component energy accounting for simulated
// sensor nodes, plus a parameter set calibrated to Mica2-class mote
// hardware (the paper's 2005-era platform).
//
// PRESTO's central argument is a technology-trend one: radio communication
// costs orders of magnitude more energy than computation or flash storage,
// so communication should be traded for computation (model checking) and
// storage (local archival). The constants in DefaultParams encode that
// hierarchy explicitly; every experiment's energy totals flow through a
// Meter so results can be broken down by component.
package energy

import (
	"fmt"
	"strings"
	"time"
)

// Category identifies a hardware component drawing energy.
type Category int

// Energy categories. RadioListen covers low-power-listening channel checks
// (idle listening); RadioTx/RadioRx cover actual frame transfer including
// preambles and ACKs.
const (
	RadioTx Category = iota
	RadioRx
	RadioListen
	CPU
	FlashRead
	FlashWrite
	FlashErase
	Sensing
	numCategories
)

// NumCategories is the number of distinct energy categories.
const NumCategories = int(numCategories)

var categoryNames = [...]string{
	RadioTx:     "radio-tx",
	RadioRx:     "radio-rx",
	RadioListen: "radio-listen",
	CPU:         "cpu",
	FlashRead:   "flash-read",
	FlashWrite:  "flash-write",
	FlashErase:  "flash-erase",
	Sensing:     "sensing",
}

// String returns the category's short name.
func (c Category) String() string {
	if c < 0 || int(c) >= NumCategories {
		return fmt.Sprintf("category(%d)", int(c))
	}
	return categoryNames[c]
}

// Meter accumulates Joules per category. The zero value is ready to use.
// Meter is not safe for concurrent use: the simulation core is
// single-threaded by design (see internal/simtime).
type Meter struct {
	joules [numCategories]float64
	events [numCategories]uint64
}

// Add charges j Joules to category c. Negative charges panic: energy only
// flows out of a mote's battery.
func (m *Meter) Add(c Category, j float64) {
	if j < 0 {
		panic(fmt.Sprintf("energy: negative charge %g J to %v", j, c))
	}
	if c < 0 || int(c) >= NumCategories {
		panic(fmt.Sprintf("energy: invalid category %d", int(c)))
	}
	m.joules[c] += j
	m.events[c]++
}

// Total returns the total Joules across all categories.
func (m *Meter) Total() float64 {
	var sum float64
	for _, j := range m.joules {
		sum += j
	}
	return sum
}

// Radio returns the Joules spent on all radio activity (tx+rx+listen).
func (m *Meter) Radio() float64 {
	return m.joules[RadioTx] + m.joules[RadioRx] + m.joules[RadioListen]
}

// Get returns the Joules charged to a single category.
func (m *Meter) Get(c Category) float64 { return m.joules[c] }

// Events returns how many charges were recorded for a category.
func (m *Meter) Events(c Category) uint64 { return m.events[c] }

// ByCategory returns a copy of all per-category totals.
func (m *Meter) ByCategory() [NumCategories]float64 { return m.joules }

// Reset zeroes the meter.
func (m *Meter) Reset() { *m = Meter{} }

// AddFrom accumulates another meter's totals into m (used to aggregate
// per-mote meters into a deployment total).
func (m *Meter) AddFrom(o *Meter) {
	for i := range m.joules {
		m.joules[i] += o.joules[i]
		m.events[i] += o.events[i]
	}
}

// String renders a compact per-category breakdown, omitting zero rows.
func (m *Meter) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%.3f J total", m.Total())
	for c := Category(0); int(c) < NumCategories; c++ {
		if m.joules[c] > 0 {
			fmt.Fprintf(&b, ", %s=%.3f", c, m.joules[c])
		}
	}
	return b.String()
}

// Params holds the energy cost model for a mote. All per-byte and per-cycle
// values are in Joules.
type Params struct {
	// Radio costs. A Mica2-class CC1000 radio (the paper's 2005-era
	// hardware) moves ~2.4 kB/s at ~48 mW TX / ~29 mW RX: roughly 20 uJ
	// to transmit and 12 uJ to receive one byte. These constants keep the
	// published cost hierarchy radio >> flash >> cpu per byte/op.
	TxJPerByte float64 // energy to transmit one payload/header byte
	RxJPerByte float64 // energy to receive one byte

	// Low-power listening (B-MAC style). The sender prepends a preamble
	// long enough to cover the receiver's channel-check interval, so
	// per-packet preamble cost grows linearly with the receiver's LPL
	// interval; the receiver pays a short channel probe every interval.
	PreambleJPerSecond float64 // TX cost of preamble per second of preamble
	ListenJPerCheck    float64 // RX cost of one LPL channel probe
	// TurnaroundJPerFrame is the fixed sender-side cost of waking the
	// radio and switching to TX for one frame (plus the minimum preamble
	// even toward always-on receivers). This is the per-packet overhead
	// that batching amortizes in Figure 2.
	TurnaroundJPerFrame float64

	HeaderBytes int // MAC+PHY header per frame
	AckBytes    int // link-layer ACK frame size
	MaxPayload  int // maximum payload bytes per frame (fragmentation unit)

	// CPU: MSP430-class microcontroller, ~4 MHz at ~3 mW active: ~0.75
	// nJ/cycle; we use 1 nJ/cycle.
	CPUJPerCycle float64

	// Flash: NAND-class part, ~1 uJ/byte program, ~0.25 uJ/byte read,
	// block erase in the tens of uJ.
	FlashWriteJPerByte  float64
	FlashReadJPerByte   float64
	FlashEraseJPerBlock float64

	// Sensing: one ADC acquisition.
	SenseJPerSample float64
}

// DefaultParams returns the Mica2-class cost model used throughout the
// experiments. The absolute numbers are representative, not measured; the
// experiments only rely on their ratios (radio >> flash >> cpu).
func DefaultParams() Params {
	return Params{
		TxJPerByte:          20e-6,
		RxJPerByte:          12e-6,
		PreambleJPerSecond:  60e-3,  // ~60 mW radio during preamble
		ListenJPerCheck:     150e-6, // ~2.5ms probe at 60 mW
		TurnaroundJPerFrame: 120e-6, // ~2 ms wakeup+turnaround at 60 mW
		HeaderBytes:         16,
		AckBytes:            11,
		MaxPayload:          96,
		CPUJPerCycle:        1.0e-9,
		FlashWriteJPerByte:  1.0e-6,
		FlashReadJPerByte:   0.25e-6,
		FlashEraseJPerBlock: 100e-6,
		SenseJPerSample:     3.0e-6,
	}
}

// Validate reports an error when a parameter set is unusable (non-positive
// core costs or frame geometry).
func (p Params) Validate() error {
	switch {
	case p.TxJPerByte <= 0 || p.RxJPerByte <= 0:
		return fmt.Errorf("energy: per-byte radio costs must be positive (tx=%g rx=%g)", p.TxJPerByte, p.RxJPerByte)
	case p.MaxPayload <= 0:
		return fmt.Errorf("energy: MaxPayload must be positive, got %d", p.MaxPayload)
	case p.HeaderBytes < 0 || p.AckBytes < 0:
		return fmt.Errorf("energy: negative frame geometry (header=%d ack=%d)", p.HeaderBytes, p.AckBytes)
	case p.PreambleJPerSecond < 0 || p.ListenJPerCheck < 0:
		return fmt.Errorf("energy: negative LPL costs")
	case p.CPUJPerCycle < 0 || p.FlashWriteJPerByte < 0 || p.FlashReadJPerByte < 0 || p.FlashEraseJPerBlock < 0:
		return fmt.Errorf("energy: negative cpu/flash costs")
	case p.SenseJPerSample < 0:
		return fmt.Errorf("energy: negative sensing cost")
	}
	return nil
}

// Frames returns how many link frames are needed for a payload of n bytes.
// Zero-byte payloads still require one frame (e.g. a beacon).
func (p Params) Frames(n int) int {
	if n <= 0 {
		return 1
	}
	return (n + p.MaxPayload - 1) / p.MaxPayload
}

// TxCost returns the sender-side energy for a payload of n bytes sent as
// one message whose B-MAC wakeup preamble must cover a receiver check
// interval of lpl. The long preamble is paid once per message — after the
// first frame the receiver stays awake, so subsequent fragments pay only
// the per-frame turnaround — plus header bytes and ACK reception per
// frame. This is the per-packet overhead that batching amortizes in
// Figure 2.
func (p Params) TxCost(n int, lpl time.Duration) float64 {
	frames := p.Frames(n)
	preamble := p.PreambleJPerSecond * lpl.Seconds()
	turnaround := p.TurnaroundJPerFrame * float64(frames)
	bytes := float64(n + frames*p.HeaderBytes)
	ack := float64(frames*p.AckBytes) * p.RxJPerByte
	return preamble + turnaround + bytes*p.TxJPerByte + ack
}

// RxCost returns the receiver-side energy for a payload of n bytes,
// including header reception and ACK transmission.
func (p Params) RxCost(n int) float64 {
	frames := p.Frames(n)
	bytes := float64(n + frames*p.HeaderBytes)
	ack := float64(frames*p.AckBytes) * p.TxJPerByte
	return bytes*p.RxJPerByte + ack
}

// ListenCost returns the idle-listening energy for a node that probes the
// channel every lpl over an elapsed period. A zero or negative interval
// means the radio is always on; we charge continuous listen power
// (approximated as preamble power).
func (p Params) ListenCost(elapsed, lpl time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	if lpl <= 0 {
		return p.PreambleJPerSecond * elapsed.Seconds()
	}
	checks := float64(elapsed) / float64(lpl)
	return checks * p.ListenJPerCheck
}

// Lifetime estimates how long a battery of capacity J lasts at the average
// power implied by spending spent Joules over elapsed time.
func Lifetime(batteryJ float64, spent float64, elapsed time.Duration) time.Duration {
	if spent <= 0 || elapsed <= 0 {
		return time.Duration(1<<63 - 1) // effectively forever
	}
	avgW := spent / elapsed.Seconds()
	sec := batteryJ / avgW
	return time.Duration(sec * float64(time.Second))
}

// AABatteryJ is the usable energy of a pair of AA cells (~2×1.5V×2600mAh,
// derated): roughly 20 kJ.
const AABatteryJ = 20000.0
