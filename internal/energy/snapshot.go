package energy

import (
	"fmt"
	"io"

	"presto/internal/snap"
)

// Snapshot externalizes the meter's per-category totals and event
// counts.
func (m *Meter) Snapshot(w io.Writer) error {
	var e snap.Enc
	e.Uvarint(uint64(NumCategories))
	for i := 0; i < NumCategories; i++ {
		e.F64(m.joules[i])
		e.U64(m.events[i])
	}
	return snap.WriteBlock(w, snap.TagMeter, e.Data())
}

// Restore overwrites the meter with state captured by Snapshot.
func (m *Meter) Restore(r io.Reader) error {
	body, err := snap.ReadBlock(r, snap.TagMeter)
	if err != nil {
		return err
	}
	d := snap.NewDec(body)
	if n := d.Uvarint(); n != uint64(NumCategories) {
		return fmt.Errorf("energy: snapshot has %d categories, want %d", n, NumCategories)
	}
	for i := 0; i < NumCategories; i++ {
		m.joules[i] = d.F64()
		m.events[i] = d.U64()
	}
	if err := d.Done(); err != nil {
		return fmt.Errorf("energy: %w", err)
	}
	return nil
}
