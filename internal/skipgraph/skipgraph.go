// Package skipgraph implements Skip Graphs (Aspnes & Shah, SODA 2003):
// the order-preserving distributed index PRESTO's data abstraction layer
// uses to build "a single temporally ordered view of detections across
// distributed proxies and sensors" (Section 5).
//
// Unlike a DHT, a skip graph preserves key order, so range scans walk the
// bottom list and searches take O(log n) hops without any central
// directory. Each node draws a random membership vector; the level-i
// lists link nodes whose membership vectors share an i-bit prefix, giving
// every node O(log n) expected neighbors.
//
// This implementation is a single-process simulation of the distributed
// structure: every pointer traversal during a search is counted as one
// network hop, which is what experiment E9 measures. All randomness is
// seeded for reproducibility.
package skipgraph

import (
	"errors"
	"fmt"
	"math/rand"

	"presto/internal/snap"
)

// maxLevels bounds membership vector length (2^64 nodes is plenty).
const maxLevels = 64

// ErrDuplicateKey is returned when inserting an existing key.
var ErrDuplicateKey = errors.New("skipgraph: duplicate key")

// node is one participant in the graph.
type node struct {
	key   uint64
	value interface{}
	mv    uint64 // membership vector (bit i used at level i+1)
	// left/right per level; level 0 is the full sorted list.
	left, right []*node
}

// levels returns how many levels this node currently participates in.
func (n *node) levels() int { return len(n.right) }

// Graph is a skip graph. Not safe for concurrent use.
type Graph struct {
	rng  *rand.Rand
	src  *snap.RNG // the serializable source behind rng
	size int
	head *node // leftmost node in level 0 (nil when empty)
	hops uint64
	peak int // highest populated level seen
}

// New creates an empty graph with a seeded RNG. The source is
// serializable so snapshot/restore can externalize the exact membership-
// vector sequence future inserts will draw.
func New(seed int64) *Graph {
	src := snap.NewRNG(seed)
	return &Graph{rng: rand.New(src), src: src}
}

// RNGState externalizes the membership-vector generator state.
func (g *Graph) RNGState() [4]uint64 { return g.src.State() }

// SetRNGState reinstalls generator state captured by RNGState. Restore
// paths call it after re-inserting a snapshot's keys (re-insertion draws
// fresh membership vectors), so post-restore inserts draw exactly what
// the original graph would have drawn.
func (g *Graph) SetRNGState(s [4]uint64) { g.src.SetState(s) }

// RestoreHops reinstalls a snapshotted hop counter (re-inserting the
// keys on restore accrues link-walking hops that the original run never
// paid).
func (g *Graph) RestoreHops(h uint64) { g.hops = h }

// Walk visits every key/value pair in key order WITHOUT accruing hops:
// unlike RangeScan it models no network traversal. Snapshot paths use it
// so capturing a checkpoint cannot perturb the hop stats of a domain
// that keeps running.
func (g *Graph) Walk(fn func(key uint64, value interface{})) {
	for n := g.head; n != nil; n = n.right[0] {
		fn(n.key, n.value)
	}
}

// Len returns the number of keys.
func (g *Graph) Len() int { return g.size }

// Hops returns the cumulative hop count across all operations (search,
// insert, delete traversals), modeling inter-proxy messages.
func (g *Graph) Hops() uint64 { return g.hops }

// ResetHops zeroes the hop counter (between experiment phases).
func (g *Graph) ResetHops() { g.hops = 0 }

// MaxLevel returns the highest level with at least one linked pair.
func (g *Graph) MaxLevel() int { return g.peak }

// findFloor locates the node with the largest key <= key, walking from the
// given start node using skip-graph search (top level down). Returns nil
// when every key exceeds key. Hops are counted per pointer traversal.
func (g *Graph) findFloor(start *node, key uint64) *node {
	if start == nil {
		return nil
	}
	cur := start
	// If the start is right of the key, move left from the top.
	for lvl := cur.levels() - 1; lvl >= 0; {
		if cur.key <= key {
			// Move right as far as possible at this level.
			nxt := cur.right[lvl]
			if nxt != nil && nxt.key <= key {
				cur = nxt
				g.hops++
				// Stay at this level.
				if lvl >= cur.levels() {
					lvl = cur.levels() - 1
				}
				continue
			}
		} else {
			// Move left.
			prv := cur.left[lvl]
			if prv != nil && prv.key > key {
				cur = prv
				g.hops++
				if lvl >= cur.levels() {
					lvl = cur.levels() - 1
				}
				continue
			}
			if prv != nil {
				cur = prv
				g.hops++
				if lvl >= cur.levels() {
					lvl = cur.levels() - 1
				}
				continue
			}
			// No left neighbor at this level: descend.
		}
		lvl--
	}
	if cur.key > key {
		return nil // cur is the head and still greater
	}
	return cur
}

// Search finds the value for key, returning (value, found). Hops accrue on
// the graph counter; SearchHops returns them per call.
func (g *Graph) Search(key uint64) (interface{}, bool) {
	v, _, ok := g.SearchHops(key)
	return v, ok
}

// SearchHops finds key and reports the hop count for this search alone.
func (g *Graph) SearchHops(key uint64) (interface{}, int, bool) {
	before := g.hops
	// Entry point: in a real deployment any proxy can start a search; we
	// start from the head's topmost level, which is equivalent for hop
	// asymptotics.
	n := g.findFloor(g.entry(), key)
	hops := int(g.hops - before)
	if n == nil || n.key != key {
		return nil, hops, false
	}
	return n.value, hops, true
}

// entry returns a representative start node (the head).
func (g *Graph) entry() *node { return g.head }

// Insert adds a key/value pair.
func (g *Graph) Insert(key uint64, value interface{}) error {
	n := &node{key: key, value: value, mv: g.rng.Uint64()}
	n.left = make([]*node, 1, 8)
	n.right = make([]*node, 1, 8)
	if g.head == nil {
		g.head = n
		g.size++
		return nil
	}
	floor := g.findFloor(g.entry(), key)
	if floor != nil && floor.key == key {
		return ErrDuplicateKey
	}
	// Splice into level 0.
	if floor == nil {
		// New leftmost node.
		n.right[0] = g.head
		g.head.setLeft(0, n)
		g.head = n
	} else {
		n.left[0] = floor
		n.right[0] = floor.right[0]
		if floor.right[0] != nil {
			floor.right[0].setLeft(0, n)
		}
		floor.setRight(0, n)
	}
	g.size++
	// Build higher levels: at level l, link to the nearest nodes (in key
	// order) whose membership vector shares l bits with ours. We find
	// them by walking the level l-1 list outward — each step is a hop.
	for lvl := 1; lvl < maxLevels; lvl++ {
		var leftNb, rightNb *node
		for p := n.prevAt(lvl - 1); p != nil; p = p.prevAt(lvl - 1) {
			g.hops++
			if sharesPrefix(p.mv, n.mv, lvl) {
				leftNb = p
				break
			}
		}
		for p := n.nextAt(lvl - 1); p != nil; p = p.nextAt(lvl - 1) {
			g.hops++
			if sharesPrefix(p.mv, n.mv, lvl) {
				rightNb = p
				break
			}
		}
		if leftNb == nil && rightNb == nil {
			break // alone at this level: done
		}
		n.extendTo(lvl)
		n.left[lvl] = leftNb
		n.right[lvl] = rightNb
		if leftNb != nil {
			leftNb.extendTo(lvl)
			leftNb.right[lvl] = n
		}
		if rightNb != nil {
			rightNb.extendTo(lvl)
			rightNb.left[lvl] = n
		}
		if lvl > g.peak {
			g.peak = lvl
		}
	}
	return nil
}

// Delete removes a key, returning whether it existed.
func (g *Graph) Delete(key uint64) bool {
	n := g.findFloor(g.entry(), key)
	if n == nil || n.key != key {
		return false
	}
	for lvl := 0; lvl < n.levels(); lvl++ {
		l, r := n.left[lvl], n.right[lvl]
		if l != nil && lvl < l.levels() {
			l.right[lvl] = r
		}
		if r != nil && lvl < r.levels() {
			r.left[lvl] = l
		}
		g.hops++ // unlink message per level
	}
	if g.head == n {
		g.head = n.right[0]
	}
	g.size--
	return true
}

// RangeScan returns the values for all keys in [lo, hi] in key order —
// the order-preserving operation hash indexes cannot do. Hops accrue for
// the initial search plus one per scanned node.
func (g *Graph) RangeScan(lo, hi uint64) []KV {
	if hi < lo || g.head == nil {
		return nil
	}
	var out []KV
	start := g.findFloor(g.entry(), lo)
	if start == nil {
		start = g.head
	} else if start.key < lo {
		start = start.right[0]
		g.hops++
	}
	for n := start; n != nil && n.key <= hi; n = n.right[0] {
		out = append(out, KV{Key: n.key, Value: n.value})
		g.hops++
	}
	return out
}

// KV is a key/value pair from a range scan.
type KV struct {
	Key   uint64
	Value interface{}
}

// Keys returns all keys in order (testing/debugging).
func (g *Graph) Keys() []uint64 {
	var out []uint64
	for n := g.head; n != nil; n = n.right[0] {
		out = append(out, n.key)
	}
	return out
}

// Validate checks structural invariants (sorted levels, consistent
// back-pointers, membership-prefix agreement); used by property tests.
func (g *Graph) Validate() error {
	count := 0
	for n := g.head; n != nil; n = n.right[0] {
		count++
		for lvl := 0; lvl < n.levels(); lvl++ {
			r := n.right[lvl]
			if r == nil {
				continue
			}
			if r.key <= n.key {
				return fmt.Errorf("skipgraph: level %d not sorted at key %d", lvl, n.key)
			}
			if lvl >= r.levels() || r.left[lvl] != n {
				return fmt.Errorf("skipgraph: broken back-pointer at level %d key %d", lvl, n.key)
			}
			if lvl > 0 && !sharesPrefix(n.mv, r.mv, lvl) {
				return fmt.Errorf("skipgraph: level %d links nodes with differing prefixes", lvl)
			}
		}
	}
	if count != g.size {
		return fmt.Errorf("skipgraph: size %d but %d reachable nodes", g.size, count)
	}
	return nil
}

// --- helpers ---

// sharesPrefix reports whether a and b agree on their first l bits.
func sharesPrefix(a, b uint64, l int) bool {
	if l <= 0 {
		return true
	}
	if l >= 64 {
		return a == b
	}
	mask := uint64(1)<<uint(l) - 1
	return a&mask == b&mask
}

func (n *node) extendTo(lvl int) {
	for len(n.right) <= lvl {
		n.right = append(n.right, nil)
		n.left = append(n.left, nil)
	}
}

func (n *node) setLeft(lvl int, m *node)  { n.extendTo(lvl); n.left[lvl] = m }
func (n *node) setRight(lvl int, m *node) { n.extendTo(lvl); n.right[lvl] = m }

func (n *node) prevAt(lvl int) *node {
	if lvl < n.levels() {
		return n.left[lvl]
	}
	return nil
}

func (n *node) nextAt(lvl int) *node {
	if lvl < n.levels() {
		return n.right[lvl]
	}
	return nil
}
