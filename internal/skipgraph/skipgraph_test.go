package skipgraph

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	g := New(1)
	if g.Len() != 0 {
		t.Fatal("empty graph non-zero length")
	}
	if _, ok := g.Search(5); ok {
		t.Fatal("found key in empty graph")
	}
	if g.Delete(5) {
		t.Fatal("deleted from empty graph")
	}
	if got := g.RangeScan(0, 100); got != nil {
		t.Fatal("range scan on empty graph")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertSearch(t *testing.T) {
	g := New(1)
	keys := []uint64{50, 10, 90, 30, 70, 20, 80, 40, 60, 100}
	for _, k := range keys {
		if err := g.Insert(k, k*2); err != nil {
			t.Fatal(err)
		}
	}
	if g.Len() != len(keys) {
		t.Fatalf("len=%d", g.Len())
	}
	for _, k := range keys {
		v, ok := g.Search(k)
		if !ok || v.(uint64) != k*2 {
			t.Fatalf("Search(%d)=%v,%v", k, v, ok)
		}
	}
	if _, ok := g.Search(55); ok {
		t.Fatal("found nonexistent key")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateInsert(t *testing.T) {
	g := New(1)
	g.Insert(5, "a")
	if err := g.Insert(5, "b"); err != ErrDuplicateKey {
		t.Fatalf("err=%v", err)
	}
	v, _ := g.Search(5)
	if v != "a" {
		t.Fatal("duplicate insert clobbered value")
	}
}

func TestKeysSorted(t *testing.T) {
	g := New(3)
	rng := rand.New(rand.NewSource(9))
	want := map[uint64]bool{}
	for i := 0; i < 500; i++ {
		k := rng.Uint64() % 10000
		if !want[k] {
			want[k] = true
			g.Insert(k, nil)
		}
	}
	keys := g.Keys()
	if len(keys) != len(want) {
		t.Fatalf("keys=%d want=%d", len(keys), len(want))
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatal("keys not sorted")
	}
}

func TestDelete(t *testing.T) {
	g := New(1)
	for k := uint64(0); k < 100; k++ {
		g.Insert(k, k)
	}
	for k := uint64(0); k < 100; k += 2 {
		if !g.Delete(k) {
			t.Fatalf("Delete(%d) failed", k)
		}
	}
	if g.Len() != 50 {
		t.Fatalf("len=%d", g.Len())
	}
	for k := uint64(0); k < 100; k++ {
		_, ok := g.Search(k)
		if (k%2 == 0) == ok {
			t.Fatalf("Search(%d)=%v after deletes", k, ok)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteHead(t *testing.T) {
	g := New(1)
	g.Insert(1, "x")
	g.Insert(2, "y")
	if !g.Delete(1) {
		t.Fatal("delete head failed")
	}
	if v, ok := g.Search(2); !ok || v != "y" {
		t.Fatal("survivor lost")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRangeScan(t *testing.T) {
	g := New(1)
	for k := uint64(0); k < 100; k += 10 {
		g.Insert(k, k)
	}
	got := g.RangeScan(25, 65)
	want := []uint64{30, 40, 50, 60}
	if len(got) != len(want) {
		t.Fatalf("scan returned %d entries", len(got))
	}
	for i, kv := range got {
		if kv.Key != want[i] {
			t.Fatalf("scan[%d]=%d, want %d", i, kv.Key, want[i])
		}
	}
	// Inclusive bounds.
	got = g.RangeScan(30, 30)
	if len(got) != 1 || got[0].Key != 30 {
		t.Fatalf("inclusive scan %v", got)
	}
	// Inverted and out-of-range.
	if g.RangeScan(65, 25) != nil {
		t.Fatal("inverted scan")
	}
	if got := g.RangeScan(200, 300); len(got) != 0 {
		t.Fatal("out-of-range scan")
	}
	// From before the first key.
	got = g.RangeScan(0, 15)
	if len(got) != 2 || got[0].Key != 0 || got[1].Key != 10 {
		t.Fatalf("leading scan %v", got)
	}
}

func TestSearchHopsLogarithmic(t *testing.T) {
	// The headline property: hops grow ~log n, not ~n. Compare mean
	// search hops at n=128 and n=4096: ratio should be far below the 32x
	// linear ratio — allow up to 4x (log ratio is 12/7 ≈ 1.7).
	mean := func(n int) float64 {
		g := New(7)
		rng := rand.New(rand.NewSource(11))
		keys := make([]uint64, 0, n)
		seen := map[uint64]bool{}
		for len(keys) < n {
			k := rng.Uint64()
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
				g.Insert(k, nil)
			}
		}
		g.ResetHops()
		const searches = 300
		var total int
		for i := 0; i < searches; i++ {
			k := keys[rng.Intn(len(keys))]
			_, hops, ok := g.SearchHops(k)
			if !ok {
				t.Fatalf("lost key %d", k)
			}
			total += hops
		}
		return float64(total) / searches
	}
	small, large := mean(128), mean(4096)
	t.Logf("mean hops: n=128 %.1f, n=4096 %.1f", small, large)
	if large > 4*small {
		t.Fatalf("hops scale superlogarithmically: %.1f -> %.1f", small, large)
	}
	if large > 12*math.Log2(4096) {
		t.Fatalf("absolute hops too high: %.1f for n=4096", large)
	}
}

func TestLevelsPopulated(t *testing.T) {
	g := New(5)
	for k := uint64(0); k < 1000; k++ {
		g.Insert(k, nil)
	}
	// With 1000 nodes, expect ~log2(1000) ≈ 10 levels give or take.
	if g.MaxLevel() < 5 || g.MaxLevel() > 25 {
		t.Fatalf("max level %d for 1000 nodes", g.MaxLevel())
	}
}

func TestDeterministic(t *testing.T) {
	build := func() []uint64 {
		g := New(42)
		rng := rand.New(rand.NewSource(13))
		for i := 0; i < 200; i++ {
			g.Insert(rng.Uint64(), nil)
		}
		return g.Keys()
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed graphs diverged")
		}
	}
}

// Property: the graph agrees with a sorted-map reference under arbitrary
// insert/delete interleavings, and invariants hold throughout.
func TestPropertyReferenceModel(t *testing.T) {
	f := func(ops []struct {
		Key    uint16
		Delete bool
	}) bool {
		g := New(17)
		ref := map[uint64]bool{}
		for _, op := range ops {
			k := uint64(op.Key)
			if op.Delete {
				if g.Delete(k) != ref[k] {
					return false
				}
				delete(ref, k)
			} else {
				err := g.Insert(k, k)
				if ref[k] && err != ErrDuplicateKey {
					return false
				}
				if !ref[k] && err != nil {
					return false
				}
				ref[k] = true
			}
		}
		if g.Len() != len(ref) {
			return false
		}
		for k := range ref {
			if _, ok := g.Search(k); !ok {
				return false
			}
		}
		return g.Validate() == nil
	}
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(23))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSearch4096(b *testing.B) {
	g := New(7)
	rng := rand.New(rand.NewSource(3))
	keys := make([]uint64, 4096)
	for i := range keys {
		keys[i] = rng.Uint64()
		g.Insert(keys[i], nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Search(keys[i%len(keys)])
	}
}
