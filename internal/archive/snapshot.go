package archive

import (
	"fmt"
	"io"

	"presto/internal/simtime"
	"presto/internal/snap"
)

// Snapshot externalizes the store's in-RAM state: the segment time
// index, the free-block list, the partially filled block, buffered
// records, and counters. The flash contents themselves are the device's
// state — callers snapshot the flash.Device separately (mote.Snapshot
// composes the two). Everything is read by direct field access, never
// through device reads, so a snapshot charges no energy.
func (s *Store) Snapshot(w io.Writer) error {
	var e snap.Enc
	e.Uvarint(uint64(len(s.segs)))
	for _, sg := range s.segs {
		e.Uvarint(uint64(sg.block))
		e.Uvarint(uint64(sg.pages))
		e.Uvarint(uint64(sg.count))
		e.I64(int64(sg.minT))
		e.I64(int64(sg.maxT))
		e.Uvarint(uint64(sg.level))
	}
	e.Uvarint(uint64(len(s.free)))
	for _, b := range s.free {
		e.Uvarint(uint64(b))
	}
	e.I64(int64(s.cur))
	e.Uvarint(uint64(s.curPages))
	e.Uvarint(uint64(len(s.pending)))
	for _, r := range s.pending {
		e.I64(int64(r.T))
		e.F64(r.V)
	}
	e.I64(int64(s.newest))
	e.Bool(s.hasNewest)
	e.U64(s.appends)
	e.U64(s.agePasses)
	e.U64(s.dropped)
	return snap.WriteBlock(w, snap.TagArchive, e.Data())
}

// Restore overwrites the store's in-RAM state with state captured by
// Snapshot. The underlying flash.Device must already hold the matching
// restored contents.
func (s *Store) Restore(r io.Reader) error {
	body, err := snap.ReadBlock(r, snap.TagArchive)
	if err != nil {
		return err
	}
	d := snap.NewDec(body)
	s.segs = nil
	nSegs := d.Uvarint()
	for i := uint64(0); i < nSegs && d.Err() == nil; i++ {
		s.segs = append(s.segs, segment{
			block: int(d.Uvarint()),
			pages: int(d.Uvarint()),
			count: int(d.Uvarint()),
			minT:  simtime.Time(d.I64()),
			maxT:  simtime.Time(d.I64()),
			level: int(d.Uvarint()),
		})
	}
	s.free = nil
	nFree := d.Uvarint()
	for i := uint64(0); i < nFree && d.Err() == nil; i++ {
		s.free = append(s.free, int(d.Uvarint()))
	}
	s.cur = int(d.I64())
	s.curPages = int(d.Uvarint())
	s.pending = nil
	nPending := d.Uvarint()
	for i := uint64(0); i < nPending && d.Err() == nil; i++ {
		s.pending = append(s.pending, Record{T: simtime.Time(d.I64()), V: d.F64()})
	}
	s.newest = simtime.Time(d.I64())
	s.hasNewest = d.Bool()
	s.appends = d.U64()
	s.agePasses = d.U64()
	s.dropped = d.U64()
	if err := d.Done(); err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	return nil
}
