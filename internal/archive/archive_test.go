package archive

import (
	"math"
	"testing"

	"presto/internal/energy"
	"presto/internal/flash"
	"presto/internal/simtime"
)

func newStore(t *testing.T, geo flash.Geometry) (*Store, *flash.Device) {
	t.Helper()
	dev, err := flash.New(geo, energy.DefaultParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	return st, dev
}

func smallGeo() flash.Geometry {
	return flash.Geometry{PageSize: 120, PagesPerBlock: 4, NumBlocks: 8}
}

func TestOpenRejectsTinyDevices(t *testing.T) {
	dev, _ := flash.New(flash.Geometry{PageSize: 256, PagesPerBlock: 4, NumBlocks: 3}, energy.DefaultParams(), nil)
	if _, err := Open(dev); err != ErrTooSmall {
		t.Fatalf("err=%v, want ErrTooSmall", err)
	}
	dev2, _ := flash.New(flash.Geometry{PageSize: 8, PagesPerBlock: 4, NumBlocks: 8}, energy.DefaultParams(), nil)
	if _, err := Open(dev2); err == nil {
		t.Fatal("page smaller than a record should fail")
	}
}

func TestAppendQueryRoundTrip(t *testing.T) {
	st, _ := newStore(t, smallGeo())
	for i := 0; i < 50; i++ {
		r := Record{T: simtime.Time(i) * simtime.Minute, V: 20 + float64(i)*0.1}
		if err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	got, err := st.Query(10*simtime.Minute, 20*simtime.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 11 {
		t.Fatalf("got %d records, want 11", len(got))
	}
	for i, r := range got {
		wantT := simtime.Time(10+i) * simtime.Minute
		if r.T != wantT {
			t.Fatalf("record %d at %v, want %v", i, r.T, wantT)
		}
		if math.Abs(r.V-(20+float64(10+i)*0.1)) > 1e-4 {
			t.Fatalf("record %d value %v", i, r.V)
		}
	}
}

func TestQueryIncludesPending(t *testing.T) {
	st, _ := newStore(t, smallGeo())
	st.Append(Record{T: simtime.Minute, V: 1})
	// Not flushed (page holds 10 records); still visible.
	got, err := st.Query(0, simtime.Hour)
	if err != nil || len(got) != 1 {
		t.Fatalf("pending records invisible: %v, %v", got, err)
	}
}

func TestFlushPersistsPartialPage(t *testing.T) {
	st, dev := newStore(t, smallGeo())
	st.Append(Record{T: simtime.Minute, V: 7})
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	_, w, _ := dev.Stats()
	if w == 0 {
		t.Fatal("Flush wrote nothing")
	}
	got, _ := st.Query(0, simtime.Hour)
	if len(got) != 1 || got[0].V != 7 {
		t.Fatalf("after flush: %v", got)
	}
}

func TestAppendOutOfOrder(t *testing.T) {
	st, _ := newStore(t, smallGeo())
	st.Append(Record{T: 10 * simtime.Minute, V: 1})
	if err := st.Append(Record{T: 5 * simtime.Minute, V: 2}); err != ErrOutOfOrder {
		t.Fatalf("err=%v, want ErrOutOfOrder", err)
	}
	// Equal timestamps are allowed (multiple events in one tick).
	if err := st.Append(Record{T: 10 * simtime.Minute, V: 3}); err != nil {
		t.Fatalf("equal timestamp rejected: %v", err)
	}
}

func TestQueryInvertedRange(t *testing.T) {
	st, _ := newStore(t, smallGeo())
	if _, err := st.Query(simtime.Hour, 0); err == nil {
		t.Fatal("inverted range should fail")
	}
}

func TestBounds(t *testing.T) {
	st, _ := newStore(t, smallGeo())
	if _, _, ok := st.Bounds(); ok {
		t.Fatal("empty store reported bounds")
	}
	st.Append(Record{T: simtime.Minute, V: 1})
	st.Append(Record{T: 2 * simtime.Minute, V: 2})
	lo, hi, ok := st.Bounds()
	if !ok || lo != simtime.Minute || hi != 2*simtime.Minute {
		t.Fatalf("bounds %v %v %v", lo, hi, ok)
	}
}

// fill appends n records at 1-minute spacing starting at start.
func fill(t *testing.T, st *Store, start simtime.Time, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		r := Record{T: start + simtime.Time(i)*simtime.Minute, V: float64(i % 100)}
		if err := st.Append(r); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func TestAgingTriggersAndPreservesCoverage(t *testing.T) {
	// Device: 8 blocks x 4 pages x 10 records = 320 records capacity.
	st, _ := newStore(t, smallGeo())
	fill(t, st, 0, 2000)
	stats := st.Stats()
	if stats.AgePasses == 0 {
		t.Fatal("no aging passes despite 6x overfill")
	}
	if stats.MaxLevel == 0 {
		t.Fatal("aging never raised resolution level")
	}
	// Old data must still be queryable, just coarser.
	old, err := st.Query(0, 100*simtime.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(old) == 0 {
		t.Fatal("aging dropped all old data; want coarse records")
	}
	// And recent data at full resolution.
	lvl, ok := st.LevelAt(1999 * simtime.Minute)
	if !ok || lvl != 0 {
		t.Fatalf("recent data level=%d ok=%v, want 0 true", lvl, ok)
	}
}

func TestAgingCoarsensOldData(t *testing.T) {
	st, _ := newStore(t, smallGeo())
	fill(t, st, 0, 2000)
	// Old region should be at a coarser level than recent region.
	oldRecs, _ := st.Query(0, 200*simtime.Minute)
	newRecs, _ := st.Query(1800*simtime.Minute, 1999*simtime.Minute)
	if len(oldRecs) == 0 || len(newRecs) == 0 {
		t.Fatal("missing data")
	}
	oldDensity := float64(len(oldRecs)) / 200
	newDensity := float64(len(newRecs)) / 200
	if oldDensity >= newDensity {
		t.Fatalf("old density %.3f >= new density %.3f; aging should coarsen old data", oldDensity, newDensity)
	}
}

func TestAgedValuesApproximateOriginal(t *testing.T) {
	st, _ := newStore(t, smallGeo())
	// Slowly varying signal: group means stay close to the signal.
	n := 1500
	for i := 0; i < n; i++ {
		v := 20 + 5*math.Sin(2*math.Pi*float64(i)/500)
		if err := st.Append(Record{T: simtime.Time(i) * simtime.Minute, V: v}); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := st.Query(0, 300*simtime.Minute)
	if err != nil || len(recs) == 0 {
		t.Fatalf("query: %v, %d recs", err, len(recs))
	}
	for _, r := range recs {
		want := 20 + 5*math.Sin(2*math.Pi*r.T.Minutes()/500)
		// Coarse records carry window means stamped at window start, so
		// they can lag the point value by up to half a window; with the
		// deepest aging here windows reach ~30 min, bounding the offset
		// well under 2 degrees for this signal.
		if math.Abs(r.V-want) > 2.0 {
			t.Fatalf("aged record at %v: %.3f vs signal %.3f", r.T, r.V, want)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	st, _ := newStore(t, smallGeo())
	fill(t, st, 0, 100)
	s := st.Stats()
	if s.Appends != 100 {
		t.Errorf("Appends=%d", s.Appends)
	}
	if s.Records != 100 {
		t.Errorf("Records=%d, want 100 (no aging yet)", s.Records)
	}
	if s.FreeBlocks <= 0 {
		t.Errorf("FreeBlocks=%d", s.FreeBlocks)
	}
}

func TestLevelAtUncovered(t *testing.T) {
	st, _ := newStore(t, smallGeo())
	if _, ok := st.LevelAt(simtime.Hour); ok {
		t.Fatal("empty store claims coverage")
	}
}

func TestQueryTimeOrder(t *testing.T) {
	st, _ := newStore(t, smallGeo())
	fill(t, st, 0, 1200) // forces aging: mixed coarse + fine segments
	recs, err := st.Query(0, 1200*simtime.Minute)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].T < recs[i-1].T {
			t.Fatalf("records out of order at %d: %v < %v", i, recs[i].T, recs[i-1].T)
		}
	}
}

func TestLongRunNeverErrors(t *testing.T) {
	// Sustained 10x-capacity appends must keep working (aging reclaims).
	st, _ := newStore(t, smallGeo())
	fill(t, st, 0, 3200)
	if st.Stats().AgePasses < 2 {
		t.Fatalf("expected multiple age passes, got %d", st.Stats().AgePasses)
	}
}

func TestCoarsenRecords(t *testing.T) {
	recs := []Record{{0, 1}, {simtime.Minute, 3}, {2 * simtime.Minute, 5}, {3 * simtime.Minute, 7}, {4 * simtime.Minute, 100}}
	out := coarsenRecords(recs, 4)
	if len(out) != 2 {
		t.Fatalf("len=%d, want 2", len(out))
	}
	if out[0].V != 4 {
		t.Errorf("group mean %v, want 4", out[0].V)
	}
	if out[1].V != 100 {
		t.Errorf("tail group %v, want 100", out[1].V)
	}
	if got := coarsenRecords(recs, 1); len(got) != len(recs) {
		t.Error("factor<2 should be identity")
	}
	if got := coarsenRecords(nil, 4); len(got) != 0 {
		t.Error("empty input should stay empty")
	}
}
