// Package archive implements the PRESTO mote's local archival store: a
// log-structured, time-indexed record store on simulated NAND flash with
// wavelet-style multi-resolution aging.
//
// Section 4 of the paper: "an archival file-system ... that provides
// energy-efficient archival of useful sensor data at each sensor as well as
// a simple time-based index structure to efficiently service read
// requests", and "if storage is constrained on each sensor, graceful aging
// of archived data can be enabled using wavelet-based multi-resolution
// techniques [10]".
//
// Records are appended in time order, packed into flash pages, and indexed
// in RAM by a compact per-segment [minT, maxT] table — a binary-searchable
// time index. When the device runs out of erased blocks, an aging pass
// takes the oldest blocks, re-encodes their records at one quarter the
// temporal resolution (pairwise-of-pairwise means, i.e. two Haar
// approximation levels), writes the coarse summary to a fresh block and
// erases the originals. Old data thus degrades gracefully in resolution
// instead of disappearing.
package archive

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"presto/internal/flash"
	"presto/internal/simtime"
)

// Errors returned by the store.
var (
	ErrOutOfOrder = errors.New("archive: append is older than the newest record")
	ErrTooSmall   = errors.New("archive: device needs at least 6 erase blocks")
	ErrFull       = errors.New("archive: device full and aging cannot reclaim space")
)

// recordSize is the on-flash encoding size: int64 timestamp + float32 value.
const recordSize = 12

// ageFanIn is how many old blocks one aging pass consumes; their records
// are coarsened by the same factor, so the output fits in one quarter of
// the space and the pass nets ageFanIn-1 free blocks.
const ageFanIn = 4

// Record is one archived observation.
type Record struct {
	T simtime.Time
	V float64
}

// segment describes a contiguous, fully-written range of pages holding
// records in time order.
type segment struct {
	block int // erase block (one segment per block)
	pages int // pages used within the block
	count int // records
	minT  simtime.Time
	maxT  simtime.Time
	level int // 0 = full resolution; each aging pass adds 1
}

// Store is the archival file system. Not safe for concurrent use (the
// simulation core is single-threaded).
type Store struct {
	dev  *flash.Device
	geo  flash.Geometry
	segs []segment // sorted by minT (append order)

	free      []int    // erased, unused blocks (LIFO)
	cur       int      // block being filled, -1 if none
	curPages  int      // pages written in cur
	pending   []Record // records not yet flushed to a page
	perPage   int
	newest    simtime.Time
	hasNewest bool

	appends, agePasses, dropped uint64
}

// Open initializes a store on an empty device.
func Open(dev *flash.Device) (*Store, error) {
	geo := dev.Geometry()
	if geo.NumBlocks < 6 {
		return nil, ErrTooSmall
	}
	s := &Store{
		dev:     dev,
		geo:     geo,
		cur:     -1,
		perPage: geo.PageSize / recordSize,
	}
	if s.perPage < 1 {
		return nil, fmt.Errorf("archive: page size %d too small for one record", geo.PageSize)
	}
	// All blocks start free; hand them out from the end so block 0 is
	// used first (purely cosmetic determinism).
	for b := geo.NumBlocks - 1; b >= 0; b-- {
		s.free = append(s.free, b)
	}
	return s, nil
}

// Append stores one record. Timestamps must be non-decreasing.
func (s *Store) Append(r Record) error {
	if s.hasNewest && r.T < s.newest {
		return ErrOutOfOrder
	}
	s.pending = append(s.pending, r)
	s.newest, s.hasNewest = r.T, true
	s.appends++
	if len(s.pending) >= s.perPage {
		return s.flushPage()
	}
	return nil
}

// Flush forces any buffered records onto flash (padding the final page).
func (s *Store) Flush() error {
	for len(s.pending) > 0 {
		if err := s.flushPage(); err != nil {
			return err
		}
	}
	return nil
}

// flushPage writes up to one page of pending records.
func (s *Store) flushPage() error {
	if len(s.pending) == 0 {
		return nil
	}
	if s.cur < 0 {
		if err := s.openBlock(); err != nil {
			return err
		}
	}
	n := len(s.pending)
	if n > s.perPage {
		n = s.perPage
	}
	batch := s.pending[:n]
	buf := make([]byte, s.geo.PageSize)
	// Page header: record count in the first two bytes? No — pages are
	// fixed-size record arrays; a partial page pads with a sentinel
	// timestamp of -1 which can never occur (time starts at 0).
	for i := 0; i < s.perPage; i++ {
		off := i * recordSize
		if i < n {
			binary.LittleEndian.PutUint64(buf[off:], uint64(batch[i].T))
			binary.LittleEndian.PutUint32(buf[off+8:], math.Float32bits(float32(batch[i].V)))
		} else {
			binary.LittleEndian.PutUint64(buf[off:], math.MaxUint64) // sentinel
		}
	}
	page := s.cur*s.geo.PagesPerBlock + s.curPages
	if err := s.dev.Write(page, buf); err != nil {
		return fmt.Errorf("archive: page write: %w", err)
	}
	// Update the open segment (always the last in segs).
	seg := &s.segs[len(s.segs)-1]
	if seg.count == 0 {
		seg.minT = batch[0].T
	}
	seg.maxT = batch[n-1].T
	seg.count += n
	seg.pages++
	s.curPages++
	s.pending = s.pending[n:]
	if s.curPages == s.geo.PagesPerBlock {
		s.cur = -1 // block full; next flush opens a new one
	}
	return nil
}

// openBlock allocates a fresh block for writing, aging if necessary.
func (s *Store) openBlock() error {
	// Keep one block in reserve so an aging pass always has somewhere to
	// write its output.
	if len(s.free) <= 1 {
		if err := s.agePass(); err != nil {
			return err
		}
	}
	if len(s.free) == 0 {
		return ErrFull
	}
	b := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	s.cur = b
	s.curPages = 0
	s.segs = append(s.segs, segment{block: b})
	return nil
}

// agePass coarsens the oldest ageFanIn sealed segments of the lowest level
// into one new segment, freeing ageFanIn-1 blocks net.
func (s *Store) agePass() error {
	// Candidates: sealed segments (not the currently-open one).
	sealed := len(s.segs)
	if s.cur >= 0 {
		sealed--
	}
	if sealed < ageFanIn {
		// Not enough history to age; as a last resort drop the oldest
		// sealed segment entirely.
		if sealed >= 1 {
			old := s.segs[0]
			if err := s.dev.EraseBlock(old.block); err != nil {
				return err
			}
			s.free = append(s.free, old.block)
			s.segs = append(s.segs[:0], s.segs[1:]...)
			s.dropped += uint64(old.count)
			return nil
		}
		return ErrFull
	}
	// The oldest ageFanIn sealed segments (segs is in time order).
	victims := make([]segment, ageFanIn)
	copy(victims, s.segs[:ageFanIn])
	var recs []Record
	maxLevel := 0
	for _, v := range victims {
		r, err := s.readSegment(v)
		if err != nil {
			return err
		}
		recs = append(recs, r...)
		if v.level > maxLevel {
			maxLevel = v.level
		}
	}
	coarse := coarsenRecords(recs, ageFanIn)
	// Write the coarse summary into the reserve block.
	if len(s.free) == 0 {
		return ErrFull
	}
	out := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	seg := segment{block: out, level: maxLevel + 1}
	if err := s.writeRecords(out, coarse, &seg); err != nil {
		return err
	}
	// Erase victims and rebuild the segment table: [aged, rest...].
	for _, v := range victims {
		if err := s.dev.EraseBlock(v.block); err != nil {
			return err
		}
		s.free = append(s.free, v.block)
	}
	rest := append([]segment(nil), s.segs[ageFanIn:]...)
	s.segs = append([]segment{seg}, rest...)
	s.agePasses++
	return nil
}

// writeRecords packs records into pages of the given block, updating seg.
func (s *Store) writeRecords(block int, recs []Record, seg *segment) error {
	if len(recs) == 0 {
		return nil
	}
	seg.minT, seg.maxT = recs[0].T, recs[len(recs)-1].T
	seg.count = len(recs)
	for p := 0; p*s.perPage < len(recs); p++ {
		if p >= s.geo.PagesPerBlock {
			return fmt.Errorf("archive: aged records overflow block %d", block)
		}
		buf := make([]byte, s.geo.PageSize)
		for i := 0; i < s.perPage; i++ {
			off := i * recordSize
			idx := p*s.perPage + i
			if idx < len(recs) {
				binary.LittleEndian.PutUint64(buf[off:], uint64(recs[idx].T))
				binary.LittleEndian.PutUint32(buf[off+8:], math.Float32bits(float32(recs[idx].V)))
			} else {
				binary.LittleEndian.PutUint64(buf[off:], math.MaxUint64)
			}
		}
		if err := s.dev.Write(block*s.geo.PagesPerBlock+p, buf); err != nil {
			return err
		}
		seg.pages++
	}
	return nil
}

// coarsenRecords reduces temporal resolution by factor: each group of
// factor consecutive records becomes one record carrying the group's mean
// value (two cascaded Haar approximation levels when factor is 4) and the
// group's *first* timestamp. Window-start timestamps — rather than group
// means — keep the archive's time coverage stable under repeated aging:
// the oldest timestamp never drifts forward, history only gets coarser.
func coarsenRecords(recs []Record, factor int) []Record {
	if factor < 2 || len(recs) == 0 {
		return recs
	}
	out := make([]Record, 0, (len(recs)+factor-1)/factor)
	for i := 0; i < len(recs); i += factor {
		end := i + factor
		if end > len(recs) {
			end = len(recs)
		}
		var sumV float64
		for _, r := range recs[i:end] {
			sumV += r.V
		}
		out = append(out, Record{T: recs[i].T, V: sumV / float64(end-i)})
	}
	return out
}

// readSegment loads every record in a segment.
func (s *Store) readSegment(seg segment) ([]Record, error) {
	recs := make([]Record, 0, seg.count)
	base := seg.block * s.geo.PagesPerBlock
	for p := 0; p < seg.pages; p++ {
		buf, err := s.dev.Read(base + p)
		if err != nil {
			return nil, fmt.Errorf("archive: segment read: %w", err)
		}
		for i := 0; i < s.perPage; i++ {
			off := i * recordSize
			rawT := binary.LittleEndian.Uint64(buf[off:])
			if rawT == math.MaxUint64 {
				continue // padding sentinel
			}
			v := math.Float32frombits(binary.LittleEndian.Uint32(buf[off+8:]))
			recs = append(recs, Record{T: simtime.Time(rawT), V: float64(v)})
		}
	}
	return recs, nil
}

// Query returns all records with t0 <= T <= t1 in time order, including
// unflushed pending records. Aged regions return coarse records.
func (s *Store) Query(t0, t1 simtime.Time) ([]Record, error) {
	if t1 < t0 {
		return nil, fmt.Errorf("archive: inverted range [%v, %v]", t0, t1)
	}
	var out []Record
	// Binary search for the first segment that may overlap: segs sorted
	// by minT and non-overlapping in time.
	i := sort.Search(len(s.segs), func(i int) bool { return s.segs[i].maxT >= t0 })
	for ; i < len(s.segs); i++ {
		seg := s.segs[i]
		if seg.count == 0 || seg.minT > t1 {
			break
		}
		recs, err := s.readSegment(seg)
		if err != nil {
			return nil, err
		}
		for _, r := range recs {
			if r.T >= t0 && r.T <= t1 {
				out = append(out, r)
			}
		}
	}
	for _, r := range s.pending {
		if r.T >= t0 && r.T <= t1 {
			out = append(out, r)
		}
	}
	return out, nil
}

// LevelAt reports the resolution level covering time t (0 = full
// resolution) and whether any segment covers it.
func (s *Store) LevelAt(t simtime.Time) (int, bool) {
	for _, seg := range s.segs {
		if seg.count > 0 && t >= seg.minT && t <= seg.maxT {
			return seg.level, true
		}
	}
	for _, r := range s.pending {
		if r.T == t {
			return 0, true
		}
	}
	return 0, false
}

// Bounds returns the oldest and newest archived timestamps and whether the
// store holds any data.
func (s *Store) Bounds() (oldest, newest simtime.Time, ok bool) {
	if len(s.segs) > 0 && s.segs[0].count > 0 {
		return s.segs[0].minT, s.newest, true
	}
	if len(s.pending) > 0 {
		return s.pending[0].T, s.newest, true
	}
	return 0, 0, false
}

// Stats reports store health for experiments.
type Stats struct {
	Appends    uint64
	AgePasses  uint64
	Dropped    uint64 // records lost to last-resort drops
	Segments   int
	FreeBlocks int
	MaxLevel   int
	Records    int // records currently stored (flash + pending)
}

// Stats returns a snapshot of store counters.
func (s *Store) Stats() Stats {
	st := Stats{
		Appends:    s.appends,
		AgePasses:  s.agePasses,
		Dropped:    s.dropped,
		Segments:   len(s.segs),
		FreeBlocks: len(s.free),
	}
	for _, seg := range s.segs {
		st.Records += seg.count
		if seg.level > st.MaxLevel {
			st.MaxLevel = seg.level
		}
	}
	st.Records += len(s.pending)
	return st
}
