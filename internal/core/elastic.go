package core

// Elastic domain hosting: a running process can adopt a global domain it
// does not currently host (building it bit-identically to the original
// Build) and drop a domain it does, so a cluster coordinator can migrate
// domains between live sites and re-admit restarted ones. Both
// operations mutate routing topology (moteShard/proxyShard/shards) that
// engine entry points read lock-free, so they require engine quiescence:
// no Submit, Run, or stats call concurrently in flight. The cluster
// layer guarantees this by migrating only between advance leases, with
// the coordinator's run loop held.

import (
	"fmt"

	"presto/internal/mote"
	"presto/internal/proxy"
	"presto/internal/radio"
	"sort"
)

// AdoptDomain builds global domain d in this process and grafts it onto
// the running deployment: worker started, bridge attached, replica taps
// wired. The domain starts from its post-Build state (virtual time 0,
// nothing sampled); callers re-hosting a live domain follow up with
// RestoreDomain before advancing it. Domain 0 is not adoptable in
// wired-replica deployments — it is the replica's home and every other
// domain's uplink target.
func (n *Network) AdoptDomain(d int) error {
	if d < 0 || d >= n.lay.Shards {
		return fmt.Errorf("core: domain %d outside the %d global domains", d, n.lay.Shards)
	}
	if d == 0 && n.cfg.WiredFirstProxy {
		return fmt.Errorf("core: domain 0 hosts the wired replica and cannot be adopted")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.localShard(d); ok {
		return fmt.Errorf("core: domain %d already hosted by this process", d)
	}
	lo, hi := n.lay.ProxyRange(d)
	s, err := n.buildShard(d, len(n.shards), lo, hi-lo)
	if err != nil {
		return err
	}
	n.shards = append(n.shards, s)
	for pi := lo; pi < hi; pi++ {
		n.proxyShard[pi] = s.slot
	}
	if n.cfg.WiredFirstProxy && n.cfg.Proxies > 1 {
		n.wireShardReplication(s)
	}
	n.refreshViews()
	if n.started {
		for _, m := range s.motes {
			m.Start()
		}
	}
	go s.loop()
	return nil
}

// DropDomain stops hosting global domain d: the shard worker shuts down,
// the bridge inbox detaches, and the domain's motes and proxies leave
// the process's routing tables. The domain's state is gone — callers
// migrating it elsewhere snapshot it first (SnapshotDomain). The last
// hosted domain cannot be dropped, and domain 0 never moves in
// wired-replica deployments.
func (n *Network) DropDomain(d int) error {
	if d == 0 && n.cfg.WiredFirstProxy {
		return fmt.Errorf("core: domain 0 hosts the wired replica and cannot be dropped")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.localShard(d)
	if !ok {
		return fmt.Errorf("core: domain %d not hosted by this process", d)
	}
	if len(n.shards) == 1 {
		return fmt.Errorf("core: cannot drop domain %d, it is the last hosted domain", d)
	}
	s.shutdown()
	if n.bridge != nil {
		n.bridge.DetachDomain(radio.DomainID(d))
	}
	n.shards = append(n.shards[:s.slot], n.shards[s.slot+1:]...)
	for i, sh := range n.shards {
		sh.slot = i
	}
	for _, m := range s.motes {
		delete(n.moteShard, m.ID())
		delete(n.moteHome, m.ID())
	}
	lo, hi := n.lay.ProxyRange(d)
	for pi := lo; pi < hi; pi++ {
		delete(n.proxyShard, pi)
	}
	// Remaining shards may have shifted down a slot.
	for _, sh := range n.shards {
		for mid := range sh.moteProxy {
			n.moteShard[mid] = sh.slot
		}
		plo, phi := n.lay.ProxyRange(sh.domain)
		for pi := plo; pi < phi; pi++ {
			n.proxyShard[pi] = sh.slot
		}
	}
	n.refreshViews()
	return nil
}

// HostedDomains lists the global domain indexes this process currently
// hosts, ascending.
func (n *Network) HostedDomains() []int {
	out := make([]int, len(n.shards))
	for i, s := range n.shards {
		out[i] = s.domain
	}
	sort.Ints(out)
	return out
}

// HostsDomain reports whether this process currently hosts domain d.
func (n *Network) HostsDomain(d int) bool {
	_, ok := n.localShard(d)
	return ok
}

// refreshViews rebuilds the aggregate Proxies/Motes slices and the
// shard-0 aliases after the shard set changes.
func (n *Network) refreshViews() {
	var proxies []*proxy.Proxy
	var motes []*mote.Mote
	for _, s := range n.shards {
		proxies = append(proxies, s.proxies...)
		motes = append(motes, s.motes...)
	}
	sort.Slice(motes, func(i, j int) bool { return motes[i].ID() < motes[j].ID() })
	n.Proxies, n.Motes = proxies, motes
	if len(n.shards) > 0 {
		n.Sim = n.shards[0].sim
		n.Medium = n.shards[0].medium
		n.Index = n.shards[0].ix
		n.Store = n.shards[0].st
	}
}
