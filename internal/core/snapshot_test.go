package core

import (
	"bytes"
	"testing"
	"time"

	"presto/internal/query"
)

// runSmall bootstraps a deployment and advances it far enough that every
// layer carries real state: models shipped, caches warm, archives
// populated, tickers armed, flights possibly in the air.
func runSmall(t *testing.T, n *Network) {
	t.Helper()
	if _, err := n.Bootstrap(30*time.Minute, 8, 1.0); err != nil {
		t.Fatal(err)
	}
	n.Run(17 * time.Minute)
}

// TestDomainSnapshotDeterministic is the seam's enforcement mechanism:
// snapshotting the same domain twice at the same instant yields
// identical bytes, and the first capture does not perturb the domain.
func TestDomainSnapshotDeterministic(t *testing.T) {
	n := buildSmall(t, func(c *Config) { c.Shards = 2 })
	defer n.Close()
	runSmall(t, n)

	for d := 0; d < 2; d++ {
		var a, b bytes.Buffer
		if err := n.SnapshotDomain(d, &a); err != nil {
			t.Fatalf("domain %d snapshot 1: %v", d, err)
		}
		if err := n.SnapshotDomain(d, &b); err != nil {
			t.Fatalf("domain %d snapshot 2: %v", d, err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("domain %d: repeated snapshots differ (%d vs %d bytes)", d, a.Len(), b.Len())
		}
	}
}

// TestDomainSnapshotRestoreRoundTrip restores a live domain's blob onto
// a freshly built deployment and checks (a) re-snapshotting reproduces
// the blob bit-for-bit, and (b) both deployments give identical answers
// after advancing the same amount — the restored domain is the domain.
func TestDomainSnapshotRestoreRoundTrip(t *testing.T) {
	mut := func(c *Config) { c.Shards = 2 }
	orig := buildSmall(t, mut)
	defer orig.Close()
	runSmall(t, orig)

	blobs := make([]*bytes.Buffer, 2)
	for d := 0; d < 2; d++ {
		blobs[d] = new(bytes.Buffer)
		if err := orig.SnapshotDomain(d, blobs[d]); err != nil {
			t.Fatal(err)
		}
	}

	fresh := buildSmall(t, mut)
	defer fresh.Close()
	for d := 0; d < 2; d++ {
		if err := fresh.RestoreDomain(d, bytes.NewReader(blobs[d].Bytes())); err != nil {
			t.Fatalf("restore domain %d: %v", d, err)
		}
		var again bytes.Buffer
		if err := fresh.SnapshotDomain(d, &again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again.Bytes(), blobs[d].Bytes()) {
			t.Fatalf("domain %d: snapshot -> restore -> snapshot differs (%d vs %d bytes)",
				d, again.Len(), blobs[d].Len())
		}
	}

	orig.Run(11 * time.Minute)
	fresh.Run(11 * time.Minute)
	for _, mid := range orig.MoteIDs() {
		now := orig.Now()
		q := query.Query{Type: query.Past, Mote: mid, T0: 0, T1: now, Precision: 0.5}
		ra, err := orig.ExecuteWait(q)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := fresh.ExecuteWait(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(ra.Answer.Entries) != len(rb.Answer.Entries) {
			t.Fatalf("mote %d: %d vs %d entries after restore",
				mid, len(ra.Answer.Entries), len(rb.Answer.Entries))
		}
		for i, ea := range ra.Answer.Entries {
			if ea != rb.Answer.Entries[i] {
				t.Fatalf("mote %d entry %d: %+v vs %+v", mid, i, ea, rb.Answer.Entries[i])
			}
		}
	}
	if orig.Now() != fresh.Now() {
		t.Fatalf("clocks diverged: %v vs %v", orig.Now(), fresh.Now())
	}
}

// TestDomainSnapshotRejectsCorruption flips bytes and truncates the blob
// at several cuts; every mutation must be rejected, never mis-restored.
func TestDomainSnapshotRejectsCorruption(t *testing.T) {
	n := buildSmall(t, nil)
	defer n.Close()
	runSmall(t, n)
	var blob bytes.Buffer
	if err := n.SnapshotDomain(0, &blob); err != nil {
		t.Fatal(err)
	}
	b := blob.Bytes()

	fresh := buildSmall(t, nil)
	defer fresh.Close()
	// Truncations at assorted depths.
	for _, cut := range []int{0, 4, 12, 13, len(b) / 3, len(b) - 5, len(b) - 1} {
		if err := fresh.RestoreDomain(0, bytes.NewReader(b[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// A flipped payload byte must fail the checksum (flip well past the
	// header so earlier structural checks don't mask the CRC).
	mut := append([]byte(nil), b...)
	mut[len(mut)/2] ^= 0xFF
	if err := fresh.RestoreDomain(0, bytes.NewReader(mut)); err == nil {
		t.Fatal("flipped byte accepted")
	}
	// Wrong domain index in the header.
	wrong := append([]byte(nil), b...)
	wrong[5] = 9
	if err := fresh.RestoreDomain(0, bytes.NewReader(wrong)); err == nil {
		t.Fatal("wrong domain accepted")
	}
	// The pristine blob must still restore onto this same network.
	if err := fresh.RestoreDomain(0, bytes.NewReader(b)); err != nil {
		t.Fatalf("pristine blob rejected after corrupt attempts: %v", err)
	}
}

// TestAdoptDropDomain exercises elastic re-hosting inside one process: a
// domain is snapshotted, dropped, re-adopted, restored, and must answer
// exactly as an undisturbed twin deployment.
func TestAdoptDropDomain(t *testing.T) {
	mut := func(c *Config) {
		c.Shards = 2
		c.WiredFirstProxy = true
	}
	n := buildSmall(t, mut)
	defer n.Close()
	twin := buildSmall(t, mut)
	defer twin.Close()
	runSmall(t, n)
	runSmall(t, twin)

	var blob bytes.Buffer
	if err := n.SnapshotDomain(1, &blob); err != nil {
		t.Fatal(err)
	}
	if err := n.DropDomain(1); err != nil {
		t.Fatal(err)
	}
	if n.HostsDomain(1) {
		t.Fatal("still hosting dropped domain")
	}
	if _, err := n.ProxyFor(3); err == nil {
		t.Fatal("dropped domain's mote still routed")
	}
	if err := n.DropDomain(0); err == nil {
		t.Fatal("wired-replica home dropped")
	}
	if err := n.AdoptDomain(1); err != nil {
		t.Fatal(err)
	}
	if err := n.RestoreDomain(1, bytes.NewReader(blob.Bytes())); err != nil {
		t.Fatal(err)
	}

	n.Run(9 * time.Minute)
	twin.Run(9 * time.Minute)
	for _, mid := range n.MoteIDs() {
		q := query.Query{Type: query.Past, Mote: mid, T0: 0, T1: n.Now(), Precision: 0.5}
		ra, err := n.ExecuteWait(q)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := twin.ExecuteWait(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(ra.Answer.Entries) != len(rb.Answer.Entries) {
			t.Fatalf("mote %d: %d vs %d entries after adopt/drop",
				mid, len(ra.Answer.Entries), len(rb.Answer.Entries))
		}
		for i, ea := range ra.Answer.Entries {
			if ea != rb.Answer.Entries[i] {
				t.Fatalf("mote %d entry %d: %+v vs %+v", mid, i, ea, rb.Answer.Entries[i])
			}
		}
	}
}
