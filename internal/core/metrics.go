package core

// Metrics registration: the deployment's scattered counters — proxy
// answer provenance, store routing, archive backend activity, engine
// and bridge traffic — registered into an obs.Registry as read-at-
// scrape functions. Nothing here adds hot-path cost: every series reads
// the counters the engine already keeps.

import (
	"presto/internal/obs"
	"presto/internal/proxy"
	"presto/internal/store"
)

// ProxyStats aggregates every hosted proxy's activity counters.
func (n *Network) ProxyStats() proxy.Stats {
	per := make([]proxy.Stats, len(n.shards))
	n.eachShard(func(s *shard) {
		for _, p := range s.proxies {
			addProxyStats(&per[s.slot], p.Stats())
		}
	})
	var total proxy.Stats
	for i := range per {
		addProxyStats(&total, per[i])
	}
	return total
}

func addProxyStats(dst *proxy.Stats, src proxy.Stats) {
	dst.PushesReceived += src.PushesReceived
	dst.BatchesReceived += src.BatchesReceived
	dst.EventsReceived += src.EventsReceived
	dst.PullsIssued += src.PullsIssued
	dst.PullsCoalesced += src.PullsCoalesced
	dst.PullsQueued += src.PullsQueued
	dst.PullsTimedOut += src.PullsTimedOut
	dst.StalenessPulls += src.StalenessPulls
	dst.QueriesAnswered += src.QueriesAnswered
	dst.ReplicaForwarded += src.ReplicaForwarded
	dst.ReplicaAbsorbed += src.ReplicaAbsorbed
	for i := range src.AnswersBySource {
		dst.AnswersBySource[i] += src.AnswersBySource[i]
	}
}

// RegisterMetrics registers the deployment's counters into reg. Values
// are read at scrape time, so registration is cheap and scrapes see
// live state. Call once per registry (duplicate registration panics).
func (n *Network) RegisterMetrics(reg *obs.Registry) {
	// Proxy routing outcomes — the paper's headline: how many answers
	// each provenance produced, fleet-wide.
	for s := 0; s < proxy.NumSources; s++ {
		src := proxy.Source(s)
		reg.CounterFunc("presto_proxy_answers_total", "Query answers by provenance.",
			obs.L("source", src.String()),
			func() uint64 { return n.ProxyStats().AnswersBySource[src] })
	}
	reg.CounterFunc("presto_proxy_pulls_total", "Mote rendezvous pulls issued.", nil,
		func() uint64 { return n.ProxyStats().PullsIssued })
	reg.CounterFunc("presto_proxy_pulls_timedout_total", "Rendezvous pulls that timed out.", nil,
		func() uint64 { return n.ProxyStats().PullsTimedOut })
	reg.CounterFunc("presto_proxy_staleness_pulls_total", "Rendezvous forced by per-query freshness bounds.", nil,
		func() uint64 { return n.ProxyStats().StalenessPulls })

	// Store routing decisions.
	routing := []struct {
		decision string
		read     func(store.RoutingStats) uint64
	}{
		{"proxy", func(r store.RoutingStats) uint64 { return r.Routed }},
		{"replica", func(r store.RoutingStats) uint64 { return r.ReplicaRouted }},
		{"replica-stale", func(r store.RoutingStats) uint64 { return r.ReplicaStale }},
		{"archive", func(r store.RoutingStats) uint64 { return r.ArchiveServed }},
		{"archive-stale", func(r store.RoutingStats) uint64 { return r.ArchiveStale }},
	}
	for _, rt := range routing {
		rt := rt
		reg.CounterFunc("presto_store_routing_total", "Store routing decisions by outcome.",
			obs.L("decision", rt.decision),
			func() uint64 { return rt.read(n.StoreStats()) })
	}

	// Archive backend: appends, flash traffic, aging passes, drops, and
	// the read-amplification the wavelet chunk directory achieves.
	reg.CounterFunc("presto_store_backend_appends_total", "Records appended to the archive backend.", nil,
		func() uint64 { return n.StoreBackendStats().Appends })
	reg.GaugeFunc("presto_store_backend_records", "Records currently archived.", nil,
		func() float64 { return float64(n.StoreBackendStats().Records) })
	reg.CounterFunc("presto_store_backend_pages_written_total", "Flash pages written.", nil,
		func() uint64 { return n.StoreBackendStats().PagesWritten })
	reg.CounterFunc("presto_store_backend_pages_read_total", "Flash pages read.", nil,
		func() uint64 { return n.StoreBackendStats().PagesRead })
	reg.CounterFunc("presto_store_backend_aging_passes_total", "Flash aging/compaction passes.", nil,
		func() uint64 { return n.StoreBackendStats().Compactions })
	reg.CounterFunc("presto_store_backend_coarsened_total", "Records coarsened by aging.", nil,
		func() uint64 { return n.StoreBackendStats().Coarsened })
	reg.CounterFunc("presto_store_backend_dropped_total", "Records shed by a full archive device.", nil,
		func() uint64 { return n.StoreBackendStats().Dropped })
	reg.GaugeFunc("presto_store_backend_read_amp", "Archive read amplification (records scanned per matched).", nil,
		func() float64 { return n.StoreBackendStats().ReadAmp() })

	// Engine and bridge.
	reg.CounterFunc("presto_engine_queries_submitted_total", "Queries submitted to the engine.", nil,
		func() uint64 { submitted, _, _, _ := n.EngineStats(); return submitted })
	reg.CounterFunc("presto_engine_replica_served_total", "NOW queries served by the wired replica fast path.", nil,
		func() uint64 { _, served, _, _ := n.EngineStats(); return served })
	reg.CounterFunc("presto_engine_replica_bypassed_total", "Replica fast-path bypasses by freshness bound.", nil,
		n.ReplicaBypassed)
	reg.CounterFunc("presto_engine_bridge_sent_total", "Replica bridge messages sent.", nil,
		func() uint64 { _, _, sent, _ := n.EngineStats(); return sent })
	reg.CounterFunc("presto_engine_bridge_delivered_total", "Replica bridge messages delivered.", nil,
		func() uint64 { _, _, _, delivered := n.EngineStats(); return delivered })
	reg.CounterFunc("presto_retrain_failures_total", "Background model retrain failures.", nil,
		n.RetrainFailures)
}
