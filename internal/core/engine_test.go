package core

// Tests for the sharded async query engine: pull coalescing, concurrent
// submission across shards, the wired-replica bridge, and lifecycle.

import (
	"math"
	"sync"
	"testing"
	"time"

	"presto/internal/proxy"
	"presto/internal/query"
	"presto/internal/simtime"
)

// buildSharded assembles a multi-proxy deployment with the given shard
// count and registers cleanup.
func buildSharded(t *testing.T, proxies, motesPer, shards int, mutate func(*Config)) *Network {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Radio.LossProb = 0
	cfg.Radio.JitterMax = 0
	cfg.Proxies = proxies
	cfg.MotesPerProxy = motesPer
	cfg.Shards = shards
	cfg.Traces = tempTraces(t, proxies*motesPer, 4, 0)
	if mutate != nil {
		mutate(&cfg)
	}
	n, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return n
}

func TestSubmitBatchCoalescesColdPulls(t *testing.T) {
	// N concurrent tight-precision queries on one cold mote must pay
	// exactly one archive rendezvous whose response fans out to all.
	n := buildSharded(t, 1, 1, 1, nil)
	n.Start()
	n.Run(4 * time.Hour)

	const N = 8
	at := 2 * simtime.Hour
	qs := make([]query.Query, N)
	for i := range qs {
		qs[i] = query.Query{Type: query.Past, Mote: 1, T0: at, T1: at, Precision: 0.01}
	}
	chans, err := n.SubmitBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, ch := range chans {
		res, ok := <-ch
		if !ok {
			t.Fatalf("query %d never completed", i)
		}
		if res.Answer.Source != proxy.FromPull {
			t.Fatalf("query %d source %v, want pull", i, res.Answer.Source)
		}
		if _, ok := res.Answer.Value(); !ok {
			t.Fatalf("query %d: no value", i)
		}
	}

	ms, err := n.MoteStats(1)
	if err != nil {
		t.Fatal(err)
	}
	if ms.PullsServed != 1 {
		t.Fatalf("mote served %d pulls for %d concurrent cold queries, want exactly 1", ms.PullsServed, N)
	}
	ps, err := n.ProxyStatsFor(1)
	if err != nil {
		t.Fatal(err)
	}
	if ps.PullsIssued != 1 || ps.PullsCoalesced != N-1 {
		t.Fatalf("proxy issued=%d coalesced=%d, want 1 and %d", ps.PullsIssued, ps.PullsCoalesced, N-1)
	}
}

func TestQueuedPullsMergeIntoOneFollowUp(t *testing.T) {
	// Two disjoint cold ranges: the second cannot join the first
	// rendezvous, so it queues and issues as one merged follow-up —
	// two rendezvous total, not three.
	n := buildSharded(t, 1, 1, 1, nil)
	n.Start()
	n.Run(6 * time.Hour)
	qs := []query.Query{
		{Type: query.Past, Mote: 1, T0: simtime.Hour, T1: simtime.Hour, Precision: 0.01},
		{Type: query.Past, Mote: 1, T0: 3 * simtime.Hour, T1: 3 * simtime.Hour, Precision: 0.01},
		{Type: query.Past, Mote: 1, T0: 4 * simtime.Hour, T1: 4 * simtime.Hour, Precision: 0.01},
	}
	chans, err := n.SubmitBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, ch := range chans {
		if _, ok := <-ch; !ok {
			t.Fatalf("query %d never completed", i)
		}
	}
	ms, _ := n.MoteStats(1)
	if ms.PullsServed != 2 {
		t.Fatalf("mote served %d pulls, want 2 (first + merged follow-up)", ms.PullsServed)
	}
	ps, _ := n.ProxyStatsFor(1)
	if ps.PullsQueued != 2 {
		t.Fatalf("queued=%d, want 2", ps.PullsQueued)
	}
}

func TestSubmitHammerAcrossShards(t *testing.T) {
	// The -race workhorse: many goroutines submit against every shard
	// while Run advances time concurrently.
	n := buildSharded(t, 4, 2, 4, nil)
	if n.Shards() != 4 {
		t.Fatalf("shards=%d", n.Shards())
	}
	n.Start()
	n.Run(2 * time.Hour)

	ids := n.MoteIDs()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				id := ids[(g*7+i)%len(ids)]
				res, err := n.ExecuteWait(query.Query{Type: query.Now, Mote: id, Precision: 2})
				if err != nil {
					t.Errorf("mote %d: %v", id, err)
					return
				}
				if _, ok := res.Answer.Value(); !ok {
					t.Errorf("mote %d: empty answer", id)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			n.Run(10 * time.Minute)
		}
	}()
	wg.Wait()

	submitted, _, _, _ := n.EngineStats()
	if submitted != 160 {
		t.Fatalf("submitted=%d, want 160", submitted)
	}
}

func TestShardedRunAdvancesAllDomains(t *testing.T) {
	n := buildSharded(t, 4, 1, 2, nil)
	n.Start()
	n.Run(time.Hour)
	if now := n.Now(); now != simtime.Hour {
		t.Fatalf("Now()=%v, want 1h", now)
	}
	// Every mote sampled in its own domain.
	for _, id := range n.MoteIDs() {
		st, err := n.MoteStats(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Samples != 60 {
			t.Fatalf("mote %d samples=%d", id, st.Samples)
		}
	}
}

func TestWiredReplicaBridgeAcrossShards(t *testing.T) {
	// Proxy 0 (wired, shard 0) mirrors the wireless proxies in other
	// domains over the bridge and serves their NOW queries locally.
	n := buildSharded(t, 2, 2, 2, func(c *Config) { c.WiredFirstProxy = true })
	if _, err := n.Bootstrap(36*time.Hour, 24, 1.0); err != nil {
		t.Fatal(err)
	}
	n.Run(4 * time.Hour)

	// Mote 3 lives in shard 1; its NOW queries should be answerable by
	// the replica in shard 0 without touching shard 1.
	res, err := n.ExecuteWait(query.Query{Type: query.Now, Mote: 3, Precision: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	v, ok := res.Answer.Value()
	if !ok {
		t.Fatal("replica gave no answer")
	}
	truth, _ := n.Truth(3, res.Answer.Entries[0].T)
	if math.Abs(v-truth) > 2.5 {
		t.Fatalf("replica answer %.3f vs truth %.3f", v, truth)
	}

	_, replicaServed, bridgeSent, bridgeDelivered := n.EngineStats()
	if replicaServed == 0 {
		t.Fatal("no queries served by the wired replica")
	}
	if bridgeSent == 0 || bridgeDelivered == 0 {
		t.Fatalf("bridge idle: sent=%d delivered=%d", bridgeSent, bridgeDelivered)
	}
}

func TestWiredReplicaServesDataSingleDomain(t *testing.T) {
	// In a single domain the replica is fed by a direct tap: queries for
	// wireless proxies' motes route to proxy 0 (seed behaviour) and now
	// return real mirrored data instead of empty answers.
	n := buildSharded(t, 2, 2, 1, func(c *Config) { c.WiredFirstProxy = true })
	if _, err := n.Bootstrap(36*time.Hour, 24, 1.0); err != nil {
		t.Fatal(err)
	}
	n.Run(2 * time.Hour)
	res, err := n.ExecuteWait(query.Query{Type: query.Now, Mote: 3, Precision: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	v, ok := res.Answer.Value()
	if !ok {
		t.Fatal("replica-routed query returned empty answer")
	}
	truth, _ := n.Truth(3, res.Answer.Entries[0].T)
	if math.Abs(v-truth) > 1.5 {
		t.Fatalf("replica answer %.3f vs truth %.3f", v, truth)
	}
	_, replicaRouted := n.Store.Stats()
	if replicaRouted == 0 {
		t.Fatal("store did not route to the wired replica")
	}
}

func TestCloseRejectsFurtherWork(t *testing.T) {
	n := buildSharded(t, 2, 1, 2, nil)
	n.Start()
	n.Run(time.Hour)
	n.Close()
	n.Close() // idempotent
	if _, err := n.Submit(query.Query{Type: query.Now, Mote: 1, Precision: 1}); err != ErrClosed {
		t.Fatalf("Submit after Close: %v", err)
	}
	if _, err := n.ExecuteWait(query.Query{Type: query.Now, Mote: 1, Precision: 1}); err == nil {
		t.Fatal("ExecuteWait after Close succeeded")
	}
}

func TestSubmitAsyncResult(t *testing.T) {
	// Submit returns immediately; the result arrives on the channel.
	n := buildSharded(t, 1, 2, 1, nil)
	n.Start()
	n.Run(3 * time.Hour)
	ch, err := n.Submit(query.Query{Type: query.Past, Mote: 1, T0: simtime.Hour, T1: simtime.Hour, Precision: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	res, ok := <-ch
	if !ok {
		t.Fatal("query never completed")
	}
	if res.Answer.Source != proxy.FromPull {
		t.Fatalf("source %v", res.Answer.Source)
	}
}

func TestSubmitUnknownMote(t *testing.T) {
	n := buildSharded(t, 1, 1, 1, nil)
	if _, err := n.Submit(query.Query{Type: query.Now, Mote: 99}); err == nil {
		t.Fatal("unknown mote accepted")
	}
	if _, err := n.SubmitBatch([]query.Query{{Type: query.Now, Mote: 99}}); err == nil {
		t.Fatal("unknown mote accepted in batch")
	}
}
