package core

// Fault-injection tests: the paper's bottom tier is "lossy and unreliable"
// (§1, §5) and PRESTO's abstraction is supposed to insulate users from it.
// These tests run deployments under radio loss and mote death and check
// the system degrades the way the architecture promises: queries still
// answer (possibly best-effort), caches refine when connectivity allows,
// and nothing wedges.

import (
	"math"
	"testing"
	"time"

	"presto/internal/baseline"
	"presto/internal/predict"
	"presto/internal/proxy"
	"presto/internal/query"
	"presto/internal/simtime"
)

func TestLossyRadioStillConverges(t *testing.T) {
	// 20% loss: pushes and pulls retry; the system must still deliver
	// most data and answer queries.
	n := buildSmall(t, func(c *Config) {
		c.Radio.LossProb = 0.20
		preset := baseline.StreamAll()
		c.Preset = &preset
	})
	n.Start()
	n.Run(6 * time.Hour)
	p, err := n.ProxyFor(1)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := p.Series(1)
	// 6h = 360 samples; with 3 retries at 20% loss, delivery ~99.8%.
	if s.Stats().Confirmed < 340 {
		t.Fatalf("only %d/360 samples survived 20%% loss with retries", s.Stats().Confirmed)
	}
	_, _, lost, retried := n.Medium.Stats()
	if retried == 0 {
		t.Fatal("no retransmissions at 20% loss: loss not exercised")
	}
	t.Logf("lost=%d retried=%d", lost, retried)
}

func TestLossyPullsRetryOrTimeout(t *testing.T) {
	// Very lossy link: some pulls die even with retries; queries must
	// still complete via the timeout path rather than hanging.
	n := buildSmall(t, func(c *Config) {
		c.Radio.LossProb = 0.60
		c.Radio.MaxRetries = 1
	})
	n.Start()
	n.Run(4 * time.Hour)
	completed, timeouts := 0, 0
	for i := 0; i < 20; i++ {
		n.Run(5 * time.Minute)
		past := n.Now() - 2*simtime.Hour
		res, err := n.ExecuteWait(query.Query{Type: query.Past, Mote: 1, T0: past, T1: past, Precision: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		completed++
		if res.Answer.Source == proxy.FromTimeout {
			timeouts++
		}
	}
	if completed != 20 {
		t.Fatalf("%d/20 queries completed", completed)
	}
	if timeouts == 0 {
		t.Log("note: no timeouts at 60% loss (retries succeeded); acceptable but unusual")
	}
}

func TestMoteDeathDegradesGracefully(t *testing.T) {
	n := buildSmall(t, nil)
	if _, err := n.Bootstrap(36*time.Hour, 24, 1.0); err != nil {
		t.Fatal(err)
	}
	n.Run(2 * time.Hour)
	// Kill mote 1.
	n.Motes[0].Stop()
	n.Run(time.Hour)
	// Loose-precision queries still answer from the model.
	res, err := n.ExecuteWait(query.Query{Type: query.Now, Mote: 1, Precision: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Answer.Value(); !ok {
		t.Fatal("no best-effort answer for dead mote")
	}
	// Tight-precision queries time out but complete.
	res, err = n.ExecuteWait(query.Query{Type: query.Now, Mote: 1, Precision: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer.Source != proxy.FromTimeout {
		t.Fatalf("dead-mote tight query source %v, want timeout", res.Answer.Source)
	}
	// Other motes are unaffected.
	res, err = n.ExecuteWait(query.Query{Type: query.Now, Mote: 2, Precision: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	v, ok := res.Answer.Value()
	if !ok {
		t.Fatal("living mote unanswerable")
	}
	truth, _ := n.Truth(2, res.Answer.DoneAt)
	if math.Abs(v-truth) > 1.05 {
		t.Fatalf("living mote answer off by %v", math.Abs(v-truth))
	}
}

func TestAutoRetrainRuns(t *testing.T) {
	n := buildSmall(t, nil)
	if _, err := n.Bootstrap(30*time.Hour, 24, 1.0); err != nil {
		t.Fatal(err)
	}
	policy := predict.RetrainPolicy{Every: 12 * time.Hour, Window: 24 * time.Hour, Bins: 24}
	ticker, err := n.AutoRetrain(policy, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	n.Run(50 * time.Hour)
	if ticker.Firings() < 4 {
		t.Fatalf("retrain ticker fired %d times in 50h at 12h period", ticker.Firings())
	}
	if n.RetrainFailures() > 0 {
		t.Fatalf("retrain failures: %d", n.RetrainFailures())
	}
	ticker.Stop()
	// Models stay effective after repeated retrains: push rate low.
	before, _ := n.MoteStats(1)
	n.Run(12 * time.Hour)
	after, _ := n.MoteStats(1)
	if pushes := after.Pushes - before.Pushes; pushes > 12*60/5 {
		t.Fatalf("push rate after retrains: %d in 12h", pushes)
	}
	if _, err := n.AutoRetrain(predict.RetrainPolicy{}, 1); err == nil {
		t.Fatal("invalid policy accepted")
	}
}

func TestAutoRetrainSurvivesDeadMote(t *testing.T) {
	n := buildSmall(t, nil)
	if _, err := n.Bootstrap(30*time.Hour, 24, 1.0); err != nil {
		t.Fatal(err)
	}
	// Configure tight retention so a dead mote's confirmed data ages out
	// of the training window, forcing retrain failures that must not
	// crash the loop.
	n.Motes[0].Stop()
	policy := predict.RetrainPolicy{Every: 12 * time.Hour, Window: 6 * time.Hour, Bins: 24}
	if _, err := n.AutoRetrain(policy, 1.0); err != nil {
		t.Fatal(err)
	}
	n.Run(48 * time.Hour)
	if n.RetrainFailures() == 0 {
		t.Fatal("expected retrain failures for the dead mote (no fresh data)")
	}
	// Living motes keep working.
	res, err := n.ExecuteWait(query.Query{Type: query.Now, Mote: 2, Precision: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Answer.Value(); !ok {
		t.Fatal("living mote unanswerable after retrain failures")
	}
}

func TestLossBreaksSharedHistorySlightly(t *testing.T) {
	// With losses, a dropped push desynchronizes the shared history and
	// the delta bound can be transiently exceeded — the documented
	// trade-off. Verify the error stays bounded by a small multiple of
	// delta (the next successful push resynchronizes).
	n := buildSmall(t, func(c *Config) {
		c.Radio.LossProb = 0.30
		c.Radio.MaxRetries = 0 // worst case: no link retries
	})
	if _, err := n.Bootstrap(36*time.Hour, 24, 1.0); err != nil {
		t.Fatal(err)
	}
	n.Run(24 * time.Hour)
	var worst float64
	p, _ := n.ProxyFor(1)
	tr, _ := n.Trace(1)
	for tt := n.Now() - 6*simtime.Hour; tt < n.Now(); tt += 10 * simtime.Minute {
		p.QueryPoint(1, tt, 1e9, func(a proxy.Answer) {
			if v, ok := a.Value(); ok {
				if d := math.Abs(v - tr.Value(tt)); d > worst {
					worst = d
				}
			}
		})
	}
	t.Logf("worst proxy error under 30%% loss, no retries: %.3f (delta 1.0)", worst)
	if worst > 8.0 {
		t.Fatalf("error %v unreasonably large even for lossy operation", worst)
	}
}
