package core_test

import (
	"fmt"
	"math"
	"time"

	"presto/internal/core"
	"presto/internal/gen"
	"presto/internal/query"
)

// Example shows the full PRESTO flow: build a deployment, bootstrap the
// models, and answer a NOW query locally with bounded error.
func Example() {
	genCfg := gen.DefaultTempConfig()
	genCfg.Sensors = 4
	genCfg.Days = 3
	genCfg.EventsPerDay = 0
	traces, err := gen.Temperature(genCfg)
	if err != nil {
		panic(err)
	}

	cfg := core.DefaultConfig()
	cfg.Radio.LossProb = 0
	cfg.Radio.JitterMax = 0
	cfg.Traces = traces
	net, err := core.Build(cfg)
	if err != nil {
		panic(err)
	}
	if _, err := net.Bootstrap(36*time.Hour, 48, 1.0); err != nil {
		panic(err)
	}
	net.Run(12 * time.Hour)

	res, err := net.ExecuteWait(query.Query{Type: query.Now, Mote: 1, Precision: 1.0})
	if err != nil {
		panic(err)
	}
	v, _ := res.Answer.Value()
	truth, _ := net.Truth(1, res.Answer.DoneAt)
	fmt.Printf("answered locally: %v, within precision: %v\n",
		res.Latency() == 0, math.Abs(v-truth) <= 1.0)
	// Output: answered locally: true, within precision: true
}
