package core

import (
	"math"
	"sync"
	"testing"
	"time"

	"presto/internal/baseline"
	"presto/internal/gen"
	"presto/internal/predict"
	"presto/internal/query"
	"presto/internal/simtime"
)

func tempTraces(t *testing.T, n, days int, eventsPerDay float64) []*gen.Trace {
	t.Helper()
	c := gen.DefaultTempConfig()
	c.Sensors = n
	c.Days = days
	c.EventsPerDay = eventsPerDay
	traces, err := gen.Temperature(c)
	if err != nil {
		t.Fatal(err)
	}
	return traces
}

func buildSmall(t *testing.T, mutate func(*Config)) *Network {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Radio.LossProb = 0
	cfg.Radio.JitterMax = 0
	cfg.Proxies = 2
	cfg.MotesPerProxy = 2
	cfg.Traces = tempTraces(t, 4, 4, 0)
	if mutate != nil {
		mutate(&cfg)
	}
	n, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestValidate(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err == nil {
		t.Error("missing traces accepted")
	}
	cfg.Traces = tempTraces(t, 4, 1, 0)
	if err := cfg.Validate(); err != nil {
		t.Error(err)
	}
	cfg.Proxies = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero proxies accepted")
	}
	cfg = DefaultConfig()
	cfg.Traces = tempTraces(t, 4, 1, 0)
	cfg.SampleInterval = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero sample interval accepted")
	}
}

func TestBuildTopology(t *testing.T) {
	n := buildSmall(t, nil)
	if len(n.Proxies) != 2 || len(n.Motes) != 4 {
		t.Fatalf("proxies=%d motes=%d", len(n.Proxies), len(n.Motes))
	}
	// Mote 1,2 -> proxy 0; mote 3,4 -> proxy 1.
	p, err := n.ProxyFor(1)
	if err != nil || p != n.Proxies[0] {
		t.Fatal("mote 1 routing")
	}
	p, err = n.ProxyFor(3)
	if err != nil || p != n.Proxies[1] {
		t.Fatal("mote 3 routing")
	}
	if _, err := n.ProxyFor(99); err == nil {
		t.Fatal("unknown mote routed")
	}
	ids := n.MoteIDs()
	if len(ids) != 4 || ids[0] != 1 || ids[3] != 4 {
		t.Fatalf("mote ids %v", ids)
	}
}

func TestStartAndRun(t *testing.T) {
	n := buildSmall(t, nil)
	n.Start()
	n.Start() // idempotent
	n.Run(2 * time.Hour)
	if n.Now() != 2*simtime.Hour {
		t.Fatalf("now=%v", n.Now())
	}
	st, err := n.MoteStats(1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Samples != 120 {
		t.Fatalf("samples=%d", st.Samples)
	}
}

func TestBootstrapTrainsAndSwitches(t *testing.T) {
	n := buildSmall(t, nil)
	models, err := n.Bootstrap(36*time.Hour, 48, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 4 {
		t.Fatalf("models=%d", len(models))
	}
	for id, m := range models {
		if m.Name() != "seasonal-anchored" {
			t.Fatalf("mote %d model %q", id, m.Name())
		}
	}
	// After bootstrap, motes are in model-driven mode: push rate over the
	// next day must be far below 1 push/sample.
	before, _ := n.MoteStats(1)
	n.Run(24 * time.Hour)
	after, _ := n.MoteStats(1)
	pushes := after.Pushes - before.Pushes
	if pushes > 24*60/5 {
		t.Fatalf("model-driven mote pushed %d times in a day", pushes)
	}
}

func TestQueriesThroughStore(t *testing.T) {
	n := buildSmall(t, nil)
	if _, err := n.Bootstrap(24*time.Hour, 24, 1.0); err != nil {
		t.Fatal(err)
	}
	n.Run(6 * time.Hour)
	// NOW query on every mote via the unified store: the user never names
	// a proxy.
	for _, id := range n.MoteIDs() {
		res, err := n.ExecuteWait(query.Query{Type: query.Now, Mote: id, Precision: 1.0})
		if err != nil {
			t.Fatal(err)
		}
		v, ok := res.Answer.Value()
		if !ok {
			t.Fatalf("mote %d: no value", id)
		}
		truth, _ := n.Truth(id, res.Answer.DoneAt)
		if math.Abs(v-truth) > 1.1 {
			t.Fatalf("mote %d: answer %v truth %v", id, v, truth)
		}
	}
}

func TestExecuteAsync(t *testing.T) {
	n := buildSmall(t, nil)
	n.Start()
	n.Run(4 * time.Hour)
	done := false
	err := n.Execute(query.Query{Type: query.Past, Mote: 1, T0: simtime.Hour, T1: 2 * simtime.Hour, Precision: 0.05}, func(query.Result) { done = true })
	if err != nil {
		t.Fatal(err)
	}
	n.Run(time.Minute)
	if !done {
		t.Fatal("async query never completed")
	}
}

func TestBaselinePresetApplied(t *testing.T) {
	preset := baseline.StreamAll()
	n := buildSmall(t, func(c *Config) { c.Preset = &preset })
	n.Start()
	n.Run(time.Hour)
	st, _ := n.MoteStats(1)
	if st.Pushes < 55 {
		t.Fatalf("stream-all pushed %d times in an hour", st.Pushes)
	}
}

func TestEnergyAccounting(t *testing.T) {
	n := buildSmall(t, nil)
	n.Start()
	n.Run(6 * time.Hour)
	total := n.TotalMoteEnergy()
	if total.Total() <= 0 {
		t.Fatal("no energy recorded")
	}
	per, err := n.MoteEnergy(1)
	if err != nil {
		t.Fatal(err)
	}
	if per.Total() <= 0 || per.Total() >= total.Total() {
		t.Fatalf("per-mote %v vs total %v", per.Total(), total.Total())
	}
	if _, err := n.MoteEnergy(99); err == nil {
		t.Fatal("unknown mote meter")
	}
}

func TestRetrain(t *testing.T) {
	n := buildSmall(t, nil)
	if _, err := n.Bootstrap(30*time.Hour, 24, 1.0); err != nil {
		t.Fatal(err)
	}
	n.Run(12 * time.Hour)
	if err := n.Retrain(predict.DefaultRetrainPolicy(), 1.0); err != nil {
		t.Fatal(err)
	}
	bad := predict.RetrainPolicy{}
	if err := n.Retrain(bad, 1.0); err == nil {
		t.Fatal("invalid policy accepted")
	}
}

func TestMatchWorkload(t *testing.T) {
	n := buildSmall(t, nil)
	n.Start()
	n.Run(time.Hour)
	plan, err := n.MatchWorkload(1, predict.Workload{Deadline: 10 * time.Minute, Precision: 0.5, ArrivalPerHour: 5})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Delta != 0.5 {
		t.Fatalf("plan %+v", plan)
	}
	n.Run(time.Minute) // config propagates
	if _, err := n.MatchWorkload(99, predict.Workload{}); err == nil {
		t.Fatal("unknown mote matched")
	}
}

func TestWiredReplicaRouting(t *testing.T) {
	n := buildSmall(t, func(c *Config) { c.WiredFirstProxy = true })
	if _, ok := n.Index.ReplicaFor(1); !ok {
		t.Fatal("wireless proxy has no wired replica")
	}
	if _, ok := n.Index.ReplicaFor(0); ok {
		t.Fatal("wired proxy should not have a replica")
	}
}

func TestTruthAndTrace(t *testing.T) {
	n := buildSmall(t, nil)
	v, err := n.Truth(1, simtime.Hour)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := n.Trace(1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Value(simtime.Hour) != v {
		t.Fatal("Truth and Trace disagree")
	}
	if _, err := n.Truth(99, 0); err == nil {
		t.Fatal("unknown mote truth")
	}
	if _, err := n.Trace(0); err == nil {
		t.Fatal("mote 0 trace")
	}
}

func TestConcurrentQueries(t *testing.T) {
	// The Network facade must serialize concurrent API use.
	n := buildSmall(t, nil)
	n.Start()
	n.Run(2 * time.Hour)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := n.MoteIDs()[i%4]
			_, _ = n.ExecuteWait(query.Query{Type: query.Now, Mote: id, Precision: 2})
		}(i)
	}
	wg.Wait()
}
