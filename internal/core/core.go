// Package core assembles the complete PRESTO system: the three-tier
// architecture of Figure 1 — remote sensors with local archives, tethered
// proxies with caches and prediction engines, and the unified logical
// store with its distributed index on top — wired together over the
// simulated radio and driven by the discrete-event kernel.
//
// This is the package applications import: Build a Network from a Config,
// Bootstrap it (training phase → model-driven operation), then post
// queries against the unified store while virtual time advances.
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"presto/internal/baseline"
	"presto/internal/energy"
	"presto/internal/flash"
	"presto/internal/gen"
	"presto/internal/index"
	"presto/internal/model"
	"presto/internal/mote"
	"presto/internal/predict"
	"presto/internal/proxy"
	"presto/internal/query"
	"presto/internal/radio"
	"presto/internal/simtime"
	"presto/internal/store"
	"presto/internal/wire"
)

// proxyIDBase offsets proxy node ids above mote ids.
const proxyIDBase = 10000

// Config describes a deployment.
type Config struct {
	Seed          int64
	Proxies       int
	MotesPerProxy int

	Radio  radio.Config
	Energy energy.Params

	SampleInterval time.Duration
	LPLInterval    time.Duration
	Flash          flash.Geometry
	Delta          float64

	// Preset optionally overrides the mote push policy (baselines).
	Preset *baseline.Preset

	// Traces supplies one trace per mote (Proxies*MotesPerProxy needed).
	Traces []*gen.Trace

	// WiredFirstProxy marks proxy 0 as wired and the rest wireless; when
	// set, proxy 0 is registered as the wired replica of the others.
	WiredFirstProxy bool
}

// DefaultConfig returns a small deployment: 1 proxy, 4 motes, 1-minute
// sampling, delta 1.0.
func DefaultConfig() Config {
	return Config{
		Seed:           1,
		Proxies:        1,
		MotesPerProxy:  4,
		Radio:          radio.DefaultConfig(),
		Energy:         energy.DefaultParams(),
		SampleInterval: time.Minute,
		LPLInterval:    500 * time.Millisecond,
		Flash:          flash.Geometry{PageSize: 256, PagesPerBlock: 16, NumBlocks: 128},
		Delta:          1.0,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Proxies <= 0 || c.MotesPerProxy <= 0 {
		return fmt.Errorf("core: need positive proxies (%d) and motes per proxy (%d)", c.Proxies, c.MotesPerProxy)
	}
	if c.SampleInterval <= 0 {
		return errors.New("core: non-positive sample interval")
	}
	if len(c.Traces) < c.Proxies*c.MotesPerProxy {
		return fmt.Errorf("core: %d traces for %d motes", len(c.Traces), c.Proxies*c.MotesPerProxy)
	}
	return nil
}

// Network is a running PRESTO deployment. Public methods are safe for
// concurrent use: a mutex serializes access to the single-threaded
// simulation underneath.
type Network struct {
	mu sync.Mutex

	cfg     Config
	Sim     *simtime.Simulator
	Medium  *radio.Medium
	Index   *index.Index
	Store   *store.Store
	Proxies []*proxy.Proxy
	Motes   []*mote.Mote

	started         bool
	retrainFailures uint64
}

// Build constructs a deployment (not yet sampling; call Start or
// Bootstrap).
func Build(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sim := simtime.New(cfg.Seed)
	med, err := radio.NewMedium(sim, cfg.Radio, cfg.Energy)
	if err != nil {
		return nil, err
	}
	ix := index.New(cfg.Seed + 1)
	st := store.New(ix)
	n := &Network{cfg: cfg, Sim: sim, Medium: med, Index: ix, Store: st}

	for pi := 0; pi < cfg.Proxies; pi++ {
		pid := radio.NodeID(proxyIDBase + 1 + pi)
		p, err := proxy.New(sim, med, proxy.DefaultConfig(pid))
		if err != nil {
			return nil, err
		}
		wired := !cfg.WiredFirstProxy || pi == 0
		st.AddProxy(index.ProxyID(pi), p, wired)
		n.Proxies = append(n.Proxies, p)
	}
	if cfg.WiredFirstProxy {
		for pi := 1; pi < cfg.Proxies; pi++ {
			if err := ix.SetReplica(index.ProxyID(pi), 0); err != nil {
				return nil, err
			}
		}
	}

	for mi := 0; mi < cfg.Proxies*cfg.MotesPerProxy; mi++ {
		pi := mi / cfg.MotesPerProxy
		mid := radio.NodeID(1 + mi)
		mc := mote.DefaultConfig(mid, radio.NodeID(proxyIDBase+1+pi))
		mc.SampleInterval = cfg.SampleInterval
		mc.LPLInterval = cfg.LPLInterval
		mc.Flash = cfg.Flash
		mc.Delta = cfg.Delta
		if cfg.Preset != nil {
			cfg.Preset.Apply(&mc)
		}
		tr := cfg.Traces[mi]
		sampler := func(t simtime.Time) float64 { return tr.Value(t) }
		m, err := mote.New(sim, med, cfg.Energy, mc, sampler)
		if err != nil {
			return nil, err
		}
		n.Proxies[pi].Register(mid, mc.SampleInterval, mc.Delta)
		st.AdoptMote(mid, index.ProxyID(pi))
		n.Motes = append(n.Motes, m)
	}
	return n, nil
}

// Start begins sampling on every mote.
func (n *Network) Start() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started {
		return
	}
	n.started = true
	for _, m := range n.Motes {
		m.Start()
	}
}

// Run advances virtual time by d.
func (n *Network) Run(d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.Sim.RunFor(d)
}

// Now returns the current virtual time.
func (n *Network) Now() simtime.Time {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.Sim.Now()
}

// ProxyFor returns the proxy managing a mote.
func (n *Network) ProxyFor(m radio.NodeID) (*proxy.Proxy, error) {
	pid, err := n.Index.ProxyFor(m)
	if err != nil {
		return nil, err
	}
	return n.Proxies[int(pid)], nil
}

// Bootstrap runs PRESTO's two-phase startup: motes stream everything for
// trainFor (populating proxy caches with ground truth), then each proxy
// trains a seasonal-anchored model per mote, ships it with delta, and
// switches the mote to model-driven push. Returns the trained models by
// mote id.
func (n *Network) Bootstrap(trainFor time.Duration, bins int, delta float64) (map[radio.NodeID]model.Model, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.started {
		n.started = true
		for _, m := range n.Motes {
			m.Start()
		}
	}
	// Phase 1: stream-all.
	for _, m := range n.Motes {
		p := n.proxyOfLocked(m.ID())
		if err := p.Configure(m.ID(), wire.Config{StreamAll: 1}); err != nil {
			return nil, err
		}
	}
	n.Sim.RunFor(trainFor)
	// Phase 2: train, ship, switch to model-driven.
	models := make(map[radio.NodeID]model.Model, len(n.Motes))
	for _, m := range n.Motes {
		p := n.proxyOfLocked(m.ID())
		mdl, err := p.TrainAndShip(m.ID(), 0, n.Sim.Now(), bins, delta)
		if err != nil {
			return nil, fmt.Errorf("core: bootstrap mote %d: %w", m.ID(), err)
		}
		if err := p.Configure(m.ID(), wire.Config{StreamAll: 2}); err != nil {
			return nil, err
		}
		models[m.ID()] = mdl
	}
	// Let the model updates and config changes propagate.
	n.Sim.RunFor(time.Minute)
	return models, nil
}

// Retrain refreshes every mote's model from recent confirmed data per the
// policy and ships the updates.
func (n *Network) Retrain(policy predict.RetrainPolicy, delta float64) error {
	if err := policy.Validate(); err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	now := n.Sim.Now()
	t0 := now - simtime.Time(policy.Window)
	if t0 < 0 {
		t0 = 0
	}
	for _, m := range n.Motes {
		p := n.proxyOfLocked(m.ID())
		if _, err := p.TrainAndShip(m.ID(), t0, now, policy.Bins, delta); err != nil {
			return fmt.Errorf("core: retrain mote %d: %w", m.ID(), err)
		}
	}
	return nil
}

// AutoRetrain schedules periodic model refresh per the policy: every
// policy.Every of virtual time, each mote's model is retrained on the last
// policy.Window of confirmed data and re-shipped. Returns the ticker so
// callers can stop it. Retraining failures on individual motes (e.g. no
// confirmed data yet) are counted, not fatal — a deployment must survive
// a quiet mote.
func (n *Network) AutoRetrain(policy predict.RetrainPolicy, delta float64) (*simtime.Ticker, error) {
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	t := n.Sim.Every(policy.Every, func() {
		now := n.Sim.Now()
		t0 := now - simtime.Time(policy.Window)
		if t0 < 0 {
			t0 = 0
		}
		for _, m := range n.Motes {
			p := n.proxyOfLocked(m.ID())
			if p == nil {
				continue
			}
			if _, err := p.TrainAndShip(m.ID(), t0, now, policy.Bins, delta); err != nil {
				n.retrainFailures++
			}
		}
	})
	return t, nil
}

// RetrainFailures reports how many per-mote retrain attempts failed.
func (n *Network) RetrainFailures() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.retrainFailures
}

// MatchWorkload applies query–sensor matching for a mote: the workload is
// translated to a plan and shipped over the air.
func (n *Network) MatchWorkload(m radio.NodeID, w predict.Workload) (predict.Plan, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	plan, err := predict.Match(w, n.cfg.SampleInterval)
	if err != nil {
		return predict.Plan{}, err
	}
	p := n.proxyOfLocked(m)
	if p == nil {
		return predict.Plan{}, fmt.Errorf("core: mote %d has no proxy", m)
	}
	if err := p.Configure(m, plan.WireConfig()); err != nil {
		return predict.Plan{}, err
	}
	return plan, nil
}

// proxyOfLocked resolves a mote's proxy; caller holds the mutex.
func (n *Network) proxyOfLocked(m radio.NodeID) *proxy.Proxy {
	pid, err := n.Index.ProxyFor(m)
	if err != nil {
		return nil
	}
	return n.Proxies[int(pid)]
}

// Execute posts a query against the unified store. The callback may fire
// during a later Run if the query needs a mote round trip.
func (n *Network) Execute(q query.Query, cb func(query.Result)) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.Store.Execute(q, cb)
}

// ExecuteWait posts a query and advances virtual time until it completes,
// returning the result. This is the convenient synchronous form for
// examples and experiments.
func (n *Network) ExecuteWait(q query.Query) (query.Result, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	var res query.Result
	done := false
	err := n.Store.Execute(q, func(r query.Result) { res = r; done = true })
	if err != nil {
		return query.Result{}, err
	}
	for !done && n.Sim.Step() {
	}
	if !done {
		return query.Result{}, errors.New("core: query never completed (no pending events)")
	}
	return res, nil
}

// MoteEnergy returns a mote's up-to-date energy meter.
func (n *Network) MoteEnergy(id radio.NodeID) (*energy.Meter, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, m := range n.Motes {
		if m.ID() == id {
			return m.Meter(), nil
		}
	}
	return nil, fmt.Errorf("core: unknown mote %d", id)
}

// TotalMoteEnergy aggregates all motes' meters.
func (n *Network) TotalMoteEnergy() energy.Meter {
	n.mu.Lock()
	defer n.mu.Unlock()
	var total energy.Meter
	for _, m := range n.Motes {
		total.AddFrom(m.Meter())
	}
	return total
}

// MoteStats returns a mote's activity counters.
func (n *Network) MoteStats(id radio.NodeID) (mote.Stats, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, m := range n.Motes {
		if m.ID() == id {
			return m.Stats(), nil
		}
	}
	return mote.Stats{}, fmt.Errorf("core: unknown mote %d", id)
}

// Truth returns the ground-truth trace value for a mote at time t
// (experiments compare answers against this).
func (n *Network) Truth(id radio.NodeID, t simtime.Time) (float64, error) {
	mi := int(id) - 1
	if mi < 0 || mi >= len(n.cfg.Traces) {
		return 0, fmt.Errorf("core: unknown mote %d", id)
	}
	return n.cfg.Traces[mi].Value(t), nil
}

// Trace exposes a mote's ground-truth trace.
func (n *Network) Trace(id radio.NodeID) (*gen.Trace, error) {
	mi := int(id) - 1
	if mi < 0 || mi >= len(n.cfg.Traces) {
		return nil, fmt.Errorf("core: unknown mote %d", id)
	}
	return n.cfg.Traces[mi], nil
}

// MoteIDs lists all mote node ids in order.
func (n *Network) MoteIDs() []radio.NodeID {
	out := make([]radio.NodeID, len(n.Motes))
	for i, m := range n.Motes {
		out[i] = m.ID()
	}
	return out
}
