// Package core assembles the complete PRESTO system: the three-tier
// architecture of Figure 1 — remote sensors with local archives, tethered
// proxies with caches and prediction engines, and the unified logical
// store with its distributed index on top — wired together over the
// simulated radio and driven by discrete-event kernels.
//
// This is the package applications import: Build a Network from a Config,
// Bootstrap it (training phase → model-driven operation), then post
// queries against the unified store while virtual time advances.
//
// A deployment can be sharded (Config.Shards): proxies and their motes
// are partitioned into independent simulation domains that advance
// concurrently, one worker goroutine per domain, with a wired-replica
// bridge carrying confirmed data and models between domains. See
// engine.go for the query engine and worker model. With Shards <= 1 the
// deployment is a single domain and behaves exactly like the unsharded
// design, including bit-for-bit reproducible runs for a given seed.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"presto/internal/baseline"
	"presto/internal/energy"
	"presto/internal/flash"
	"presto/internal/gen"
	"presto/internal/index"
	"presto/internal/model"
	"presto/internal/mote"
	"presto/internal/predict"
	"presto/internal/proxy"
	"presto/internal/radio"
	"presto/internal/simtime"
	"presto/internal/store"
	"presto/internal/wire"
)

// proxyIDBase offsets proxy node ids above mote ids.
const proxyIDBase = 10000

// Config describes a deployment.
type Config struct {
	Seed          int64
	Proxies       int
	MotesPerProxy int

	// Shards partitions the deployment into this many concurrent
	// simulation domains (clamped to Proxies; <= 1 means a single
	// domain). Each domain owns a contiguous block of proxies plus their
	// motes and advances on its own worker goroutine.
	Shards int

	// FirstShard/SiteShards restrict Build to a contiguous window of the
	// global domains — cluster mode, where each OS process hosts one
	// window of the same deployment (internal/cluster assigns them).
	// SiteShards == 0 means host every domain (the ordinary
	// single-process build). Windowing changes nothing about the global
	// partition: domain seeds, proxy ranges and mote ids are derived from
	// the full config, so a windowed build is bit-identical to the
	// corresponding domains of a full build.
	FirstShard int
	SiteShards int

	Radio  radio.Config
	Energy energy.Params

	SampleInterval time.Duration
	LPLInterval    time.Duration
	Flash          flash.Geometry
	Delta          float64

	// MoteSampleIntervals optionally overrides SampleInterval per mote,
	// indexed by global mote index (len 0 or Proxies*MotesPerProxy; a zero
	// entry keeps the global interval). Heterogeneous deployments set it —
	// a 5-minute traffic counter lives next to a 1-minute thermometer.
	MoteSampleIntervals []time.Duration
	// MoteDeltas optionally overrides Delta per mote the same way (a
	// vehicle count needs a wider push threshold than a temperature).
	MoteDeltas []float64

	// StoreBackend selects each domain's archival store backend: "mem"
	// (default, in-memory) or "flash" (log-structured archive on simulated
	// NAND — the paper's flash-archival proxy design).
	StoreBackend string
	// StoreFlash is the device geometry for the "flash" store backend
	// (zero value = store.DefaultStoreGeometry()).
	StoreFlash flash.Geometry
	// StoreAging selects how flash compaction ages old segments, in the
	// form store.ParseAgingPolicy accepts: "" or "wavelet" for age-tiered
	// wavelet summarization (optionally "wavelet:1/2,1/4,1/8" to set the
	// tier schedule), "uniform" for legacy widened-mean coarsening.
	StoreAging string

	// BridgeLatency is the one-way wired latency between simulation
	// domains (replica traffic); zero means 2 ms.
	BridgeLatency time.Duration

	// Preset optionally overrides the mote push policy (baselines).
	Preset *baseline.Preset

	// Traces supplies one trace per mote (Proxies*MotesPerProxy needed).
	Traces []*gen.Trace

	// WiredFirstProxy marks proxy 0 as wired and the rest wireless; when
	// set, proxy 0 is registered as the wired replica of the others and
	// receives a mirrored copy of their confirmed data and models —
	// directly when co-located in a domain, over the bridge otherwise.
	WiredFirstProxy bool
}

// DefaultConfig returns a small deployment: 1 proxy, 4 motes, 1-minute
// sampling, delta 1.0, a single simulation domain.
func DefaultConfig() Config {
	return Config{
		Seed:           1,
		Proxies:        1,
		MotesPerProxy:  4,
		Shards:         1,
		Radio:          radio.DefaultConfig(),
		Energy:         energy.DefaultParams(),
		SampleInterval: time.Minute,
		LPLInterval:    500 * time.Millisecond,
		Flash:          flash.Geometry{PageSize: 256, PagesPerBlock: 16, NumBlocks: 128},
		Delta:          1.0,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Proxies <= 0 || c.MotesPerProxy <= 0 {
		return fmt.Errorf("core: need positive proxies (%d) and motes per proxy (%d)", c.Proxies, c.MotesPerProxy)
	}
	if c.SampleInterval <= 0 {
		return errors.New("core: non-positive sample interval")
	}
	if len(c.Traces) < c.Proxies*c.MotesPerProxy {
		return fmt.Errorf("core: %d traces for %d motes", len(c.Traces), c.Proxies*c.MotesPerProxy)
	}
	if n := c.Proxies * c.MotesPerProxy; len(c.MoteSampleIntervals) != 0 && len(c.MoteSampleIntervals) != n {
		return fmt.Errorf("core: %d per-mote sample intervals for %d motes", len(c.MoteSampleIntervals), n)
	}
	if n := c.Proxies * c.MotesPerProxy; len(c.MoteDeltas) != 0 && len(c.MoteDeltas) != n {
		return fmt.Errorf("core: %d per-mote deltas for %d motes", len(c.MoteDeltas), n)
	}
	for i, d := range c.MoteSampleIntervals {
		if d < 0 {
			return fmt.Errorf("core: negative sample interval %v for mote %d", d, i+1)
		}
	}
	for i, d := range c.MoteDeltas {
		if d < 0 {
			return fmt.Errorf("core: negative delta %g for mote %d", d, i+1)
		}
	}
	switch c.StoreBackend {
	case "", "mem", "flash":
	default:
		return fmt.Errorf("core: unknown store backend %q (want mem or flash)", c.StoreBackend)
	}
	if _, err := store.ParseAgingPolicy(c.StoreAging); err != nil {
		return err
	}
	if c.FirstShard < 0 || c.SiteShards < 0 {
		return fmt.Errorf("core: negative shard window [%d, +%d)", c.FirstShard, c.SiteShards)
	}
	if c.SiteShards == 0 && c.FirstShard != 0 {
		return fmt.Errorf("core: FirstShard %d without SiteShards", c.FirstShard)
	}
	if total := NewLayout(c).Shards; c.SiteShards > 0 && c.FirstShard+c.SiteShards > total {
		return fmt.Errorf("core: shard window [%d, %d) exceeds the %d global domains",
			c.FirstShard, c.FirstShard+c.SiteShards, total)
	}
	return nil
}

// moteSampleInterval resolves mote mi's effective sampling period: the
// per-mote override when one is set, the global interval otherwise.
func (c Config) moteSampleInterval(mi int) time.Duration {
	if mi < len(c.MoteSampleIntervals) && c.MoteSampleIntervals[mi] > 0 {
		return c.MoteSampleIntervals[mi]
	}
	return c.SampleInterval
}

// moteDelta resolves mote mi's effective push threshold the same way.
func (c Config) moteDelta(mi int) float64 {
	if mi < len(c.MoteDeltas) && c.MoteDeltas[mi] > 0 {
		return c.MoteDeltas[mi]
	}
	return c.Delta
}

// ---------------------------------------------------------------------------
// Global layout

// Layout is the deterministic global partition of a deployment into
// simulation domains: which contiguous proxy block (and therefore which
// motes) each domain owns. It is pure arithmetic over the Config — no
// domain needs to be built — so a cluster coordinator uses it to route
// motes to the sites hosting their domains, and windowed builds use it
// to place their window inside the global plan.
type Layout struct {
	// Shards is the effective global domain count (Config.Shards clamped
	// to [1, Proxies]).
	Shards        int
	MotesPerProxy int
	proxyLo       []int // per domain: first global proxy index
	proxyHi       []int // per domain: one past the last global proxy index
}

// NewLayout computes the partition for a config (Proxies and
// MotesPerProxy must be positive, as Validate enforces).
func NewLayout(cfg Config) Layout {
	nShards := cfg.Shards
	if nShards <= 0 {
		nShards = 1
	}
	if nShards > cfg.Proxies {
		nShards = cfg.Proxies
	}
	l := Layout{Shards: nShards, MotesPerProxy: cfg.MotesPerProxy}
	base, rem := cfg.Proxies/nShards, cfg.Proxies%nShards
	pi := 0
	for si := 0; si < nShards; si++ {
		count := base
		if si < rem {
			count++
		}
		l.proxyLo = append(l.proxyLo, pi)
		l.proxyHi = append(l.proxyHi, pi+count)
		pi += count
	}
	return l
}

// ProxyRange returns the global proxy index range [lo, hi) domain d owns.
func (l Layout) ProxyRange(d int) (lo, hi int) { return l.proxyLo[d], l.proxyHi[d] }

// DomainOfMote maps a mote id to its owning global domain.
func (l Layout) DomainOfMote(m radio.NodeID) (int, bool) {
	mi := int(m) - 1
	if mi < 0 || l.MotesPerProxy <= 0 {
		return 0, false
	}
	pi := mi / l.MotesPerProxy
	for d := 0; d < l.Shards; d++ {
		if pi >= l.proxyLo[d] && pi < l.proxyHi[d] {
			return d, true
		}
	}
	return 0, false
}

// DomainMotes lists the mote ids domain d owns, ascending.
func (l Layout) DomainMotes(d int) []radio.NodeID {
	lo, hi := l.ProxyRange(d)
	out := make([]radio.NodeID, 0, (hi-lo)*l.MotesPerProxy)
	for mi := lo * l.MotesPerProxy; mi < hi*l.MotesPerProxy; mi++ {
		out = append(out, radio.NodeID(1+mi))
	}
	return out
}

// AllMotes lists every mote id in the deployment, ascending.
func (l Layout) AllMotes() []radio.NodeID {
	var out []radio.NodeID
	for d := 0; d < l.Shards; d++ {
		out = append(out, l.DomainMotes(d)...)
	}
	return out
}

// Network is a running PRESTO deployment: one or more concurrent
// simulation domains fronted by the async query engine (engine.go).
// Public methods are safe for concurrent use — each domain is owned by
// one worker goroutine and the engine routes work to it.
//
// Sim, Medium, Index and Store alias shard 0's domain for compatibility
// and single-domain introspection; touching them (or Proxies/Motes
// elements) directly is only safe while the engine is quiescent — no
// Run, Submit or ExecuteWait concurrently in flight.
type Network struct {
	cfg Config
	lay Layout
	// firstShard is the global index of shards[0] — non-zero only for
	// windowed (cluster-site) builds.
	firstShard int
	shards     []*shard

	// moteShard / moteHome route a locally-hosted mote id to its owning
	// shard (index into shards) and simulated node; proxyShard maps
	// locally-hosted global proxy indexes the same way. Immutable after
	// Build.
	moteShard  map[radio.NodeID]int
	moteHome   map[radio.NodeID]*mote.Mote
	proxyShard map[int]int

	bridge       *radio.Bridge
	replicaFirst bool // multi-domain wired replica serving enabled

	mu        sync.Mutex // engine control state (started)
	started   bool
	closeOnce sync.Once

	queriesSubmitted atomic.Uint64
	replicaServed    atomic.Uint64
	replicaBypassed  atomic.Uint64 // replica skipped by a freshness bound

	// Shard 0 aliases and global views (see type comment).
	Sim     *simtime.Simulator
	Medium  *radio.Medium
	Index   *index.Index
	Store   *store.Store
	Proxies []*proxy.Proxy
	Motes   []*mote.Mote
}

// Build constructs a deployment (not yet sampling; call Start or
// Bootstrap). Shard workers start immediately; Close the network when
// done with it (abandoned networks are reaped by a finalizer).
func Build(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lay := NewLayout(cfg)
	first, count := 0, lay.Shards
	if cfg.SiteShards > 0 {
		first, count = cfg.FirstShard, cfg.SiteShards
	}
	n := &Network{
		cfg:        cfg,
		lay:        lay,
		firstShard: first,
		moteShard:  make(map[radio.NodeID]int),
		moteHome:   make(map[radio.NodeID]*mote.Mote),
		proxyShard: make(map[int]int),
	}
	// The bridge exists whenever the *global* deployment is multi-domain:
	// a windowed build hosting a single domain still replicates over it —
	// traffic for domains in other processes leaves through its uplink
	// (cluster.Site installs one; without an uplink such traffic drops,
	// like radio loss).
	if lay.Shards > 1 {
		lat := cfg.BridgeLatency
		if lat <= 0 {
			lat = 2 * time.Millisecond
		}
		n.bridge = radio.NewBridge(lat)
		// The replica NOW fast path runs where domain 0 (the wired proxy)
		// is hosted.
		n.replicaFirst = cfg.WiredFirstProxy && first == 0
	}

	// Build this process's window of the global partition: shard si owns
	// proxies [ProxyRange(si)) whether or not neighbouring domains are
	// hosted here.
	for si := first; si < first+count; si++ {
		lo, hi := lay.ProxyRange(si)
		s, err := n.buildShard(si, len(n.shards), lo, hi-lo)
		if err != nil {
			n.Close()
			return nil, err
		}
		n.shards = append(n.shards, s)
		for pi := lo; pi < hi; pi++ {
			n.proxyShard[pi] = s.slot
		}
	}

	// Wired replication: proxy 0 mirrors every wireless proxy. Same-
	// domain proxies tap straight into it; remote domains go over the
	// bridge. The replica registers every remote mote in replica-only
	// mode so it can absorb and serve their data.
	if cfg.WiredFirstProxy && cfg.Proxies > 1 {
		n.wireReplication()
	}

	if len(n.shards) == 0 {
		return nil, fmt.Errorf("core: empty shard window [%d, %d)", first, first+count)
	}

	n.Sim = n.shards[0].sim
	n.Medium = n.shards[0].medium
	n.Index = n.shards[0].ix
	n.Store = n.shards[0].st
	for _, s := range n.shards {
		n.Proxies = append(n.Proxies, s.proxies...)
		n.Motes = append(n.Motes, s.motes...)
	}
	sort.Slice(n.Motes, func(i, j int) bool { return n.Motes[i].ID() < n.Motes[j].ID() })

	for _, s := range n.shards {
		go s.loop()
	}
	runtime.SetFinalizer(n, (*Network).Close)
	return n, nil
}

// buildShard assembles one simulation domain (global index si) holding
// count proxies starting at global proxy index pi0, plus their motes,
// registered at the given process-local slot. Everything about the
// domain — kernel and index seeds, node ids, trace assignment — derives
// from the global indexes, so the same domain built in any process (at
// build time or adopted later) behaves bit-for-bit identically.
func (n *Network) buildShard(si, slot, pi0, count int) (*shard, error) {
	cfg := n.cfg
	sim := simtime.New(cfg.Seed + int64(si))
	med, err := radio.NewMedium(sim, cfg.Radio, cfg.Energy)
	if err != nil {
		return nil, err
	}
	ix := index.New(cfg.Seed + 1 + int64(si))
	st := store.New(ix)
	if cfg.StoreBackend == "flash" {
		pol, err := store.ParseAgingPolicy(cfg.StoreAging)
		if err != nil {
			return nil, err
		}
		fb, err := store.NewFlashBackendPolicy(cfg.StoreFlash, pol)
		if err != nil {
			return nil, err
		}
		st.SetBackend(fb)
	}
	s := &shard{
		domain:    si,
		slot:      slot,
		sim:       sim,
		medium:    med,
		ix:        ix,
		st:        st,
		moteProxy: make(map[radio.NodeID]*proxy.Proxy),
		bridge:    n.bridge,
		cmds:      make(chan shardCmd, 256),
		quit:      make(chan struct{}),
		pending:   make(map[*pendingQuery]struct{}),
	}

	for pi := pi0; pi < pi0+count; pi++ {
		pid := radio.NodeID(proxyIDBase + 1 + pi)
		p, err := proxy.New(sim, med, proxy.DefaultConfig(pid))
		if err != nil {
			return nil, err
		}
		wired := !cfg.WiredFirstProxy || pi == 0
		st.AddProxy(index.ProxyID(pi), p, wired)
		s.proxies = append(s.proxies, p)
	}

	for pi := pi0; pi < pi0+count; pi++ {
		for mi := pi * cfg.MotesPerProxy; mi < (pi+1)*cfg.MotesPerProxy; mi++ {
			mid := radio.NodeID(1 + mi)
			mc := mote.DefaultConfig(mid, radio.NodeID(proxyIDBase+1+pi))
			mc.SampleInterval = cfg.moteSampleInterval(mi)
			mc.LPLInterval = cfg.LPLInterval
			mc.Flash = cfg.Flash
			mc.Delta = cfg.moteDelta(mi)
			if cfg.Preset != nil {
				cfg.Preset.Apply(&mc)
			}
			tr := cfg.Traces[mi]
			sampler := func(t simtime.Time) float64 { return tr.Value(t) }
			m, err := mote.New(sim, med, cfg.Energy, mc, sampler)
			if err != nil {
				return nil, err
			}
			p := s.proxies[pi-pi0]
			p.Register(mid, mc.SampleInterval, mc.Delta)
			st.AdoptMote(mid, index.ProxyID(pi), mc.SampleInterval)
			s.motes = append(s.motes, m)
			s.moteProxy[mid] = p
			n.moteShard[mid] = slot
			n.moteHome[mid] = m
		}
	}
	return s, nil
}

// wireReplication connects every wireless proxy's replica tap to proxy 0
// and registers their motes on it in replica-only mode. Within shard 0
// the tap is a direct call (same domain, same kernel); across shards it
// rides the bridge, whose handler on shard 0 absorbs the traffic. In a
// windowed build only the locally-hosted side of each link exists: the
// process hosting domain 0 registers *every* wireless proxy's motes on
// the replica (their traffic arrives over the bridge, locally or through
// the cluster transport), and other processes install taps whose
// bridge sends leave through the uplink.
func (n *Network) wireReplication() {
	cfg := n.cfg
	var wiredProxy *proxy.Proxy
	if s0, ok := n.localShard(0); ok {
		wiredProxy = s0.proxies[0]
		s0.wired = wiredProxy
		if n.bridge != nil {
			n.bridge.AttachDomain(0, s0.sim, func(msg radio.BridgeMsg) {
				wiredProxy.AbsorbReplica(msg.Mote, msg.Kind, msg.Payload)
			})
		}
		// Register every wireless proxy's motes — hosted here or not —
		// so the replica can absorb and serve whatever the bridge
		// delivers.
		for pi := 1; pi < cfg.Proxies; pi++ {
			for mi := pi * cfg.MotesPerProxy; mi < (pi+1)*cfg.MotesPerProxy; mi++ {
				wiredProxy.RegisterReplica(radio.NodeID(1+mi), cfg.moteSampleInterval(mi), cfg.moteDelta(mi))
			}
		}
	}

	for _, s := range n.shards {
		n.wireShardReplication(s)
	}
}

// wireShardReplication installs one shard's side of the replica links:
// the bridge inbox attachment and, for every wireless proxy it hosts,
// the replica tap (direct within domain 0, over the bridge elsewhere).
// Build calls it for every shard; AdoptDomain calls it for the shard it
// grafts onto a running deployment.
func (n *Network) wireShardReplication(s *shard) {
	si := s.domain
	if n.bridge != nil && si != 0 {
		// Non-replica domains still need an attachment so future
		// bidirectional traffic has an inbox; handler drops.
		n.bridge.AttachDomain(radio.DomainID(si), s.sim, func(radio.BridgeMsg) {})
	}
	lo, _ := n.lay.ProxyRange(si)
	for lpi, p := range s.proxies {
		pi := lo + lpi
		if pi == 0 {
			continue // the wired proxy does not replicate itself
		}
		if si == 0 {
			// Same domain: direct tap, and the domain-local store
			// routes these motes' queries to the replica (seed
			// behaviour, now with real mirrored data behind it).
			p.SetReplicaTap(s.wired.AbsorbReplica)
			// Proxy 0 is always wired here, so this cannot fail.
			_ = s.ix.SetReplica(index.ProxyID(pi), 0)
		} else {
			// Capture the bridge, not n: this closure is held by the
			// shard for its lifetime, and referencing n would keep
			// abandoned networks finalizer-unreachable.
			src, bridge := radio.DomainID(si), n.bridge
			p.SetReplicaTap(func(m radio.NodeID, kind radio.Kind, payload []byte) {
				bridge.Send(radio.BridgeMsg{
					Src: src, Dst: 0, Mote: m, Kind: kind,
					Payload: append([]byte(nil), payload...),
				})
			})
		}
	}
}

// localShard returns the shard hosting global domain d, if this process
// hosts it. Hosted windows need not be contiguous once domains have been
// adopted or dropped, so this scans rather than offsetting by firstShard.
func (n *Network) localShard(d int) (*shard, bool) {
	for _, s := range n.shards {
		if s.domain == d {
			return s, true
		}
	}
	return nil, false
}

// Layout returns the deployment's global domain partition.
func (n *Network) Layout() Layout { return n.lay }

// Bridge returns the inter-domain wired-replica bridge (nil for
// single-domain deployments). Cluster sites hang their transport uplink
// off it; tests inspect its counters.
func (n *Network) Bridge() *radio.Bridge { return n.bridge }

// Start begins sampling on every mote.
func (n *Network) Start() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started {
		return
	}
	n.started = true
	n.eachShard(func(s *shard) {
		for _, m := range s.motes {
			m.Start()
		}
	})
}

// ProxyFor returns the proxy managing a mote.
func (n *Network) ProxyFor(m radio.NodeID) (*proxy.Proxy, error) {
	s, err := n.shardFor(m)
	if err != nil {
		return nil, err
	}
	return s.moteProxy[m], nil
}

// Bootstrap runs PRESTO's two-phase startup on every domain
// concurrently: motes stream everything for trainFor (populating proxy
// caches with ground truth), then each proxy trains a seasonal-anchored
// model per mote, ships it with delta, and switches the mote to
// model-driven push. Returns the trained models by mote id.
func (n *Network) Bootstrap(trainFor time.Duration, bins int, delta float64) (map[radio.NodeID]model.Model, error) {
	n.mu.Lock()
	if !n.started {
		n.started = true
		n.eachShard(func(s *shard) {
			for _, m := range s.motes {
				m.Start()
			}
		})
	}
	n.mu.Unlock()

	models := make([]map[radio.NodeID]model.Model, len(n.shards))
	errs := make([]error, len(n.shards))
	n.eachShard(func(s *shard) {
		local := make(map[radio.NodeID]model.Model, len(s.motes))
		// Phase 1: stream-all.
		for _, m := range s.motes {
			if err := s.moteProxy[m.ID()].Configure(m.ID(), wire.Config{StreamAll: 1}); err != nil {
				errs[s.slot] = err
				return
			}
		}
		s.advance(trainFor)
		// Phase 2: train, ship, switch to model-driven.
		for _, m := range s.motes {
			p := s.moteProxy[m.ID()]
			mdl, err := p.TrainAndShip(m.ID(), 0, s.sim.Now(), bins, delta)
			if err != nil {
				errs[s.slot] = fmt.Errorf("core: bootstrap mote %d: %w", m.ID(), err)
				return
			}
			if err := p.Configure(m.ID(), wire.Config{StreamAll: 2}); err != nil {
				errs[s.slot] = err
				return
			}
			local[m.ID()] = mdl
		}
		// Let the model updates and config changes propagate.
		s.advance(time.Minute)
		models[s.slot] = local
	})
	merged := make(map[radio.NodeID]model.Model, len(n.moteShard))
	for si, local := range models {
		if errs[si] != nil {
			return nil, errs[si]
		}
		for id, m := range local {
			merged[id] = m
		}
	}
	return merged, nil
}

// Retrain refreshes every mote's model from recent confirmed data per the
// policy and ships the updates.
func (n *Network) Retrain(policy predict.RetrainPolicy, delta float64) error {
	if err := policy.Validate(); err != nil {
		return err
	}
	errs := make([]error, len(n.shards))
	n.eachShard(func(s *shard) {
		now := s.sim.Now()
		t0 := now - simtime.Time(policy.Window)
		if t0 < 0 {
			t0 = 0
		}
		for _, m := range s.motes {
			if _, err := s.moteProxy[m.ID()].TrainAndShip(m.ID(), t0, now, policy.Bins, delta); err != nil {
				errs[s.slot] = fmt.Errorf("core: retrain mote %d: %w", m.ID(), err)
				return
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RetrainTicker aggregates the per-domain retrain tickers installed by
// AutoRetrain.
type RetrainTicker struct {
	shards  []*shard          // the shards the tickers were installed on
	tickers []*simtime.Ticker // parallel to shards
}

// Firings reports the total retrain rounds fired across all domains.
func (t *RetrainTicker) Firings() uint64 {
	var total uint64
	for _, tk := range t.tickers {
		if tk != nil {
			total += tk.Firings()
		}
	}
	return total
}

// Stop cancels future retrains in every domain.
func (t *RetrainTicker) Stop() {
	for i, tk := range t.tickers {
		if tk == nil {
			continue
		}
		tk := tk
		t.shards[i].call(func(*shard) { tk.Stop() })
	}
}

// AutoRetrain schedules periodic model refresh per the policy: every
// policy.Every of virtual time, each domain retrains its motes' models
// on the last policy.Window of confirmed data and re-ships them. Returns
// a ticker handle so callers can stop it. Retraining failures on
// individual motes (e.g. no confirmed data yet) are counted, not fatal —
// a deployment must survive a quiet mote.
func (n *Network) AutoRetrain(policy predict.RetrainPolicy, delta float64) (*RetrainTicker, error) {
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	rt := &RetrainTicker{
		shards:  append([]*shard(nil), n.shards...),
		tickers: make([]*simtime.Ticker, len(n.shards)),
	}
	n.eachShard(func(s *shard) {
		rt.tickers[s.slot] = s.sim.Every(policy.Every, func() {
			now := s.sim.Now()
			t0 := now - simtime.Time(policy.Window)
			if t0 < 0 {
				t0 = 0
			}
			for _, m := range s.motes {
				p := s.moteProxy[m.ID()]
				if p == nil {
					continue
				}
				if _, err := p.TrainAndShip(m.ID(), t0, now, policy.Bins, delta); err != nil {
					s.retrainFailures.Add(1)
				}
			}
		})
	})
	return rt, nil
}

// RetrainFailures reports how many per-mote retrain attempts failed.
func (n *Network) RetrainFailures() uint64 {
	var total uint64
	for _, s := range n.shards {
		total += s.retrainFailures.Load()
	}
	return total
}

// MatchWorkload applies query–sensor matching for a mote: the workload is
// translated to a plan and shipped over the air.
func (n *Network) MatchWorkload(m radio.NodeID, w predict.Workload) (predict.Plan, error) {
	s, err := n.shardFor(m)
	if err != nil {
		return predict.Plan{}, fmt.Errorf("core: mote %d has no proxy", m)
	}
	plan, err := predict.Match(w, n.cfg.SampleInterval)
	if err != nil {
		return predict.Plan{}, err
	}
	var cfgErr error
	if !s.call(func(s *shard) { cfgErr = s.moteProxy[m].Configure(m, plan.WireConfig()) }) {
		return predict.Plan{}, ErrClosed
	}
	if cfgErr != nil {
		return predict.Plan{}, cfgErr
	}
	return plan, nil
}

// MoteEnergy returns a mote's up-to-date energy meter.
func (n *Network) MoteEnergy(id radio.NodeID) (*energy.Meter, error) {
	s, err := n.shardFor(id)
	if err != nil {
		return nil, err
	}
	var meter *energy.Meter
	if !s.call(func(*shard) { meter = n.moteHome[id].Meter() }) {
		return nil, ErrClosed
	}
	return meter, nil
}

// TotalMoteEnergy aggregates all motes' meters.
func (n *Network) TotalMoteEnergy() energy.Meter {
	totals := make([]energy.Meter, len(n.shards))
	n.eachShard(func(s *shard) {
		for _, m := range s.motes {
			totals[s.slot].AddFrom(m.Meter())
		}
	})
	var total energy.Meter
	for i := range totals {
		total.AddFrom(&totals[i])
	}
	return total
}

// MoteStats returns a mote's activity counters.
func (n *Network) MoteStats(id radio.NodeID) (mote.Stats, error) {
	s, err := n.shardFor(id)
	if err != nil {
		return mote.Stats{}, err
	}
	var st mote.Stats
	if !s.call(func(*shard) { st = n.moteHome[id].Stats() }) {
		return mote.Stats{}, ErrClosed
	}
	return st, nil
}

// ProxyStatsFor returns the activity counters of the proxy managing a
// mote.
func (n *Network) ProxyStatsFor(id radio.NodeID) (proxy.Stats, error) {
	s, err := n.shardFor(id)
	if err != nil {
		return proxy.Stats{}, err
	}
	var st proxy.Stats
	if !s.call(func(s *shard) { st = s.moteProxy[id].Stats() }) {
		return proxy.Stats{}, ErrClosed
	}
	return st, nil
}

// Truth returns the ground-truth trace value for a mote at time t
// (experiments compare answers against this).
func (n *Network) Truth(id radio.NodeID, t simtime.Time) (float64, error) {
	mi := int(id) - 1
	if mi < 0 || mi >= len(n.cfg.Traces) {
		return 0, fmt.Errorf("core: unknown mote %d", id)
	}
	return n.cfg.Traces[mi].Value(t), nil
}

// Trace exposes a mote's ground-truth trace.
func (n *Network) Trace(id radio.NodeID) (*gen.Trace, error) {
	mi := int(id) - 1
	if mi < 0 || mi >= len(n.cfg.Traces) {
		return nil, fmt.Errorf("core: unknown mote %d", id)
	}
	return n.cfg.Traces[mi], nil
}

// MoteIDs lists all mote node ids in order.
func (n *Network) MoteIDs() []radio.NodeID {
	out := make([]radio.NodeID, len(n.Motes))
	for i, m := range n.Motes {
		out[i] = m.ID()
	}
	return out
}

// Detections returns the globally time-ordered detection stream in
// [t0, t1] merged across every domain's index.
func (n *Network) Detections(t0, t1 simtime.Time) []index.Detection {
	per := make([][]index.Detection, len(n.shards))
	n.eachShard(func(s *shard) { per[s.slot] = s.st.Detections(t0, t1) })
	var out []index.Detection
	for _, ds := range per {
		out = append(out, ds...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// StoreStats aggregates every domain's store routing counters: managing-
// proxy routes, replica offers, freshness-bound replica rejections, and
// range queries served whole from the archive backend.
func (n *Network) StoreStats() store.RoutingStats {
	per := make([]store.RoutingStats, len(n.shards))
	n.eachShard(func(s *shard) { per[s.slot] = s.st.RoutingStats() })
	var total store.RoutingStats
	for _, r := range per {
		total.Routed += r.Routed
		total.ReplicaRouted += r.ReplicaRouted
		total.ReplicaStale += r.ReplicaStale
		total.ArchiveServed += r.ArchiveServed
		total.ArchiveStale += r.ArchiveStale
	}
	return total
}

// StoreBackendStats aggregates every domain's archive backend counters,
// so callers can report archive hit ratios and flash read amplification.
func (n *Network) StoreBackendStats() store.BackendStats {
	per := make([]store.BackendStats, len(n.shards))
	n.eachShard(func(s *shard) { per[s.slot] = s.st.BackendStats() })
	var total store.BackendStats
	for _, b := range per {
		total.Appends += b.Appends
		total.Records += b.Records
		total.QueryRanges += b.QueryRanges
		total.LatestReads += b.LatestReads
		total.PagesWritten += b.PagesWritten
		total.PagesRead += b.PagesRead
		total.RecordsScanned += b.RecordsScanned
		total.RecordsMatched += b.RecordsMatched
		total.RecordsSkipped += b.RecordsSkipped
		total.Compactions += b.Compactions
		total.Coarsened += b.Coarsened
		total.WaveletChunks += b.WaveletChunks
		total.Dropped += b.Dropped
	}
	return total
}

// Publish adds a detection to the index of the domain owning the
// publishing proxy.
func (n *Network) Publish(d index.Detection) error {
	pi := int(d.Proxy)
	li, ok := n.proxyShard[pi]
	if !ok {
		return fmt.Errorf("core: proxy %d not hosted by this process", d.Proxy)
	}
	s := n.shards[li]
	var err error
	if !s.call(func(s *shard) { err = s.st.Publish(d) }) {
		return ErrClosed
	}
	return err
}
