package core

// Tests for the declarative client facade: scatter-gather merge
// correctness (1 vs 4 shards), the one-engine-submission property of
// set-valued aggregates, continuous-query delivery on the simulation
// clock, and leak-free cancellation.

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"presto/internal/query"
	"presto/internal/radio"
	"presto/internal/simtime"
)

// aggSpec is the shared AGG window used across the merge tests.
func aggSpec(kind query.AggKind) query.Spec {
	return query.Spec{
		Type: query.Agg, T0: simtime.Hour, T1: 3 * simtime.Hour,
		Agg: kind, Precision: 0.5,
	}
}

// TestScatterGatherOneSubmission is the acceptance property: an AGG spec
// over N motes spanning multiple domains costs exactly one engine
// submission — the per-domain partials are merged, with no per-mote
// fan-out at the client.
func TestScatterGatherOneSubmission(t *testing.T) {
	n := buildSharded(t, 4, 2, 4, nil)
	n.Start()
	n.Run(4 * time.Hour)

	before, _, _, _ := n.EngineStats()
	res, err := n.Client().QueryOne(context.Background(), aggSpec(query.Mean))
	if err != nil {
		t.Fatal(err)
	}
	after, _, _, _ := n.EngineStats()
	if got := after - before; got != 1 {
		t.Fatalf("8-mote AGG across 4 domains cost %d engine submissions, want exactly 1", got)
	}
	if res.Err != nil {
		t.Fatalf("result err: %v", res.Err)
	}
	if res.Count == 0 || math.IsNaN(res.Value) {
		t.Fatalf("empty merged aggregate: %+v", res)
	}
	if res.Failed != 0 {
		t.Fatalf("%d motes failed", res.Failed)
	}
}

// TestScatterGatherMergeMatchesFlat compares the merged scatter-gather
// answer against a flat computation over the same per-mote entries, at 1
// and 4 shards: for every operator the merged value must equal folding
// all entries into one partial, and min/max/mean must agree with the
// legacy per-entry aggregation.
func TestScatterGatherMergeMatchesFlat(t *testing.T) {
	for _, shards := range []int{1, 4} {
		n := buildSharded(t, 4, 2, shards, nil)
		n.Start()
		n.Run(4 * time.Hour)
		c := n.Client()

		// Flat reference: the same window as a Past spec yields every
		// per-mote entry the aggregate path sees; fold them sequentially.
		past, err := c.QueryOne(context.Background(), query.Spec{
			Type: query.Past, T0: simtime.Hour, T1: 3 * simtime.Hour, Precision: 0.5,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(past.Results) != 8 {
			t.Fatalf("shards=%d: %d per-mote results, want 8", shards, len(past.Results))
		}
		flat := query.NewPartial(0.5)
		for _, r := range past.Results {
			flat.ObserveResult(r)
		}

		for _, kind := range []query.AggKind{query.Min, query.Max, query.Mean, query.Mode} {
			got, err := c.QueryOne(context.Background(), aggSpec(kind))
			if err != nil {
				t.Fatal(err)
			}
			want, wantBound, ferr := flat.Final(kind)
			if ferr != nil {
				t.Fatal(ferr)
			}
			tol := 0.0
			if kind == query.Mean {
				tol = 1e-9 // summation order differs across domains
			}
			if math.Abs(got.Value-want) > tol {
				t.Fatalf("shards=%d %v: merged %v vs flat %v", shards, kind, got.Value, want)
			}
			if math.Abs(got.ErrBound-wantBound) > 1e-9 {
				t.Fatalf("shards=%d %v: merged bound %v vs flat %v", shards, kind, got.ErrBound, wantBound)
			}
			if got.Count != flat.Count {
				t.Fatalf("shards=%d %v: merged count %d vs flat %d", shards, kind, got.Count, flat.Count)
			}
		}
		n.Close()
	}
}

// TestSpecSelectors exercises the three selector forms end to end.
func TestSpecSelectors(t *testing.T) {
	n := buildSharded(t, 2, 2, 2, nil)
	n.Start()
	n.Run(2 * time.Hour)
	c := n.Client()

	all, err := c.QueryOne(context.Background(), query.Spec{Type: query.Now, Precision: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Results) != 4 {
		t.Fatalf("all-motes NOW: %d results", len(all.Results))
	}
	for i, r := range all.Results {
		if want := radio.NodeID(i + 1); r.Query.Mote != want {
			t.Fatalf("result %d for mote %d, want %d (global order)", i, r.Query.Mote, want)
		}
		if _, ok := r.Answer.Value(); !ok {
			t.Fatalf("mote %d: empty answer", r.Query.Mote)
		}
	}

	some, err := c.QueryOne(context.Background(), query.Spec{
		Type: query.Now, Precision: 2, Select: query.SelectMotes(3, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(some.Results) != 2 || some.Results[0].Query.Mote != 1 || some.Results[1].Query.Mote != 3 {
		t.Fatalf("explicit selector results %+v", some.Results)
	}

	odd, err := c.QueryOne(context.Background(), query.Spec{
		Type: query.Now, Precision: 2,
		Select: query.SelectWhere(func(id radio.NodeID) bool { return id%2 == 1 }),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(odd.Results) != 2 {
		t.Fatalf("predicate selector: %d results", len(odd.Results))
	}

	// Empty selection and unknown motes are submission-time errors.
	if _, err := c.QueryOne(context.Background(), query.Spec{
		Type: query.Now, Select: query.SelectWhere(func(radio.NodeID) bool { return false }),
	}); err == nil {
		t.Fatal("empty selection accepted")
	}
	if _, err := c.QueryOne(context.Background(), query.Spec{
		Type: query.Now, Select: query.SelectMotes(99),
	}); err == nil {
		t.Fatal("unknown mote accepted")
	}
}

// TestSingleMoteNowSpecRidesReplica: a one-shot NOW spec naming one
// mote must keep the legacy Submit path's wired-replica fast path —
// cross-domain NOW queries served from the replica mirror.
func TestSingleMoteNowSpecRidesReplica(t *testing.T) {
	n := buildSharded(t, 2, 2, 2, func(c *Config) { c.WiredFirstProxy = true })
	if _, err := n.Bootstrap(36*time.Hour, 24, 1.0); err != nil {
		t.Fatal(err)
	}
	n.Run(4 * time.Hour)

	// Mote 3 lives in shard 1; the replica lives in shard 0.
	res, err := n.Client().QueryOne(context.Background(), query.Spec{
		Type: query.Now, Select: query.SelectMotes(3), Precision: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 1 || res.Failed != 0 {
		t.Fatalf("unexpected result shape: %+v", res)
	}
	if _, ok := res.Results[0].Answer.Value(); !ok {
		t.Fatal("no value")
	}
	if _, served, _, _ := n.EngineStats(); served == 0 {
		t.Fatal("single-mote NOW spec bypassed the wired replica")
	}
}

// TestContinuousDeliversDuringRun: a standing query re-arms on the
// simulation clock and pushes incremental results down the stream while
// one long Run is still in flight.
func TestContinuousDeliversDuringRun(t *testing.T) {
	n := buildSharded(t, 2, 2, 2, nil)
	n.Start()
	n.Run(2 * time.Hour)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	st, err := n.Client().Query(ctx, query.Spec{
		Type: query.Now, Precision: 2,
		Continuous: &query.Continuous{Every: 10 * time.Minute},
	})
	if err != nil {
		t.Fatal(err)
	}
	runDone := make(chan struct{})
	go func() {
		n.Run(6 * time.Hour)
		close(runDone)
	}()

	var results []query.SetResult
	for len(results) < 3 {
		res, ok := st.Next(context.Background())
		if !ok {
			t.Fatal("stream closed before 3 deliveries")
		}
		results = append(results, res)
	}
	end := 8 * simtime.Hour // the 2h warmup plus the 6h Run
	for i, r := range results {
		if r.Seq != i {
			t.Fatalf("delivery %d has seq %d", i, r.Seq)
		}
		if len(r.Results) != 4 {
			t.Fatalf("delivery %d: %d per-mote results", i, len(r.Results))
		}
		// Strictly increasing virtual timestamps short of the Run's end
		// prove the rounds executed incrementally while time advanced —
		// rounds queued behind the whole Run would all share its final
		// clock.
		if i > 0 && r.At <= results[i-1].At {
			t.Fatalf("delivery %d not later than %d (%v <= %v)", i, i-1, r.At, results[i-1].At)
		}
		if r.At >= end {
			t.Fatalf("delivery %d at %v, at or past the Run's end — not incremental", i, r.At)
		}
	}
	st.Close()
	<-runDone
}

// TestContinuousUntil: a bounded standing query delivers its rounds and
// closes the stream by itself.
func TestContinuousUntil(t *testing.T) {
	n := buildSharded(t, 1, 2, 1, nil)
	n.Start()
	n.Run(time.Hour)

	st, err := n.Client().Query(context.Background(), query.Spec{
		Type: query.Agg, T0: 0, T1: simtime.Hour, Agg: query.Max, Precision: 1,
		Continuous: &query.Continuous{Every: 15 * time.Minute, Until: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	go n.Run(3 * time.Hour)
	var got int
	for res := range st.Results() {
		if res.Err != nil {
			t.Fatalf("round %d err: %v", res.Seq, res.Err)
		}
		got++
	}
	if got != 4 {
		t.Fatalf("bounded stream delivered %d rounds, want 4 (Until/Every)", got)
	}
}

// TestContinuousCancelLeaksNothing: cancelling mid-stream closes the
// channel promptly and leaves no goroutines or engine waiters behind.
func TestContinuousCancelLeaksNothing(t *testing.T) {
	n := buildSharded(t, 2, 2, 2, nil)
	n.Start()
	n.Run(time.Hour)

	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	st, err := n.Client().Query(ctx, query.Spec{
		Type: query.Now, Precision: 2,
		Continuous: &query.Continuous{Every: 10 * time.Minute},
	})
	if err != nil {
		t.Fatal(err)
	}
	go n.Run(2 * time.Hour)
	// Take a few deliveries, then cancel mid-stream.
	for i := 0; i < 3; i++ {
		if _, ok := st.Next(context.Background()); !ok {
			t.Fatal("stream closed early")
		}
	}
	cancel()
	// The channel must close (the driver exits) even if nobody drains
	// further results.
	waitCtx, waitCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer waitCancel()
	for {
		if _, ok := st.Next(waitCtx); !ok {
			break
		}
	}
	if waitCtx.Err() != nil {
		t.Fatal("stream did not close after cancel")
	}
	// Goroutines settle back to (at most) the pre-query level plus the
	// still-running Run helper.
	for i := 0; ; i++ {
		if runtime.NumGoroutine() <= base+1 {
			break
		}
		if i > 100 {
			t.Fatalf("goroutines leaked: %d now vs %d before", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// And the engine still answers: no waiters wedged in any domain.
	if _, err := n.Client().QueryOne(context.Background(), query.Spec{Type: query.Now, Precision: 2}); err != nil {
		t.Fatalf("engine wedged after cancel: %v", err)
	}
}

// TestTrailingWindowOneShot: a trailing spec binds [now-d, now] at the
// execution instant — identical to posing the fixed window by hand.
func TestTrailingWindowOneShot(t *testing.T) {
	n := buildSharded(t, 2, 2, 2, nil)
	n.Start()
	n.Run(3 * time.Hour)
	c := n.Client()
	now := n.Now()

	trailing, err := c.QueryOne(context.Background(), query.Spec{
		Type: query.Agg, Agg: query.Mean, Precision: 0.5, Trailing: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := c.QueryOne(context.Background(), query.Spec{
		Type: query.Agg, Agg: query.Mean, Precision: 0.5, T0: now - simtime.Hour, T1: now,
	})
	if err != nil {
		t.Fatal(err)
	}
	if trailing.Err != nil || trailing.Count == 0 {
		t.Fatalf("trailing aggregate unusable: %+v", trailing)
	}
	if trailing.Value != fixed.Value || trailing.Count != fixed.Count {
		t.Fatalf("trailing (%v, n=%d) != fixed [now-1h, now] (%v, n=%d)",
			trailing.Value, trailing.Count, fixed.Value, fixed.Count)
	}
}

// TestTrailingContinuousReEvaluates: each round of a continuous trailing
// spec re-resolves the window at its own instant — per-round counts stay
// near one window's worth instead of growing with total history.
func TestTrailingContinuousReEvaluates(t *testing.T) {
	n := buildSharded(t, 2, 2, 2, nil)
	n.Start()
	n.Run(2 * time.Hour)

	st, err := n.Client().Query(context.Background(), query.Spec{
		Type: query.Agg, Agg: query.Mean, Precision: 0.5, Trailing: time.Hour,
		Continuous: &query.Continuous{Every: time.Hour, Until: 4 * time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	go n.Run(5 * time.Hour)
	var rounds []query.SetResult
	for res := range st.Results() {
		rounds = append(rounds, res)
	}
	if len(rounds) != 4 {
		t.Fatalf("delivered %d rounds, want 4", len(rounds))
	}
	for i, r := range rounds {
		if r.Err != nil || r.Count == 0 {
			t.Fatalf("round %d unusable: %+v", i, r)
		}
		// 4 motes x 1-minute sampling over a 1h trailing window ≈ 240
		// observations; a window anchored at zero would hold 2h+ of
		// history by round 0 and keep growing.
		if r.Count > 300 {
			t.Fatalf("round %d: %d observations — window not trailing", i, r.Count)
		}
	}
}

// TestSpecErrNoMotes: an empty selection surfaces the typed error.
func TestSpecErrNoMotes(t *testing.T) {
	n := buildSharded(t, 1, 2, 1, nil)
	n.Start()
	_, err := n.Client().Query(context.Background(), query.Spec{
		Type: query.Now, Precision: 1,
		Select: query.SelectWhere(func(radio.NodeID) bool { return false }),
	})
	if !errors.Is(err, query.ErrNoMotes) {
		t.Fatalf("got %v, want query.ErrNoMotes", err)
	}
}

// TestQueryOneOnClosedNetwork: submission after Close fails cleanly.
func TestSpecAfterClose(t *testing.T) {
	n := buildSharded(t, 1, 1, 1, nil)
	n.Start()
	n.Close()
	if _, err := n.Client().QueryOne(context.Background(), query.Spec{Type: query.Now, Precision: 1}); err == nil {
		t.Fatal("QueryOne after Close succeeded")
	}
	if _, err := n.Client().Query(context.Background(), query.Spec{
		Type: query.Now, Precision: 1, Continuous: &query.Continuous{Every: time.Minute},
	}); !errors.Is(err, ErrClosed) {
		t.Fatalf("continuous Query after Close: %v, want ErrClosed", err)
	}
}

// TestSpecValidation: invalid specs are rejected at submission.
func TestSpecSubmitValidation(t *testing.T) {
	n := buildSharded(t, 1, 1, 1, nil)
	n.Start()
	bad := []query.Spec{
		{Type: query.Past, T0: simtime.Hour, T1: 0},
		{Type: query.Agg, T1: simtime.Hour, Agg: query.AggKind(9)},
		{Type: query.Now, Continuous: &query.Continuous{Every: 0}},
	}
	for i, s := range bad {
		if _, err := n.Client().Query(context.Background(), s); err == nil {
			t.Fatalf("bad spec %d accepted", i)
		}
	}
}
