package core

// The declarative client facade and the engine's scatter-gather stage.
//
// A query.Spec targets a *set* of motes; the engine fans it out as one
// command per owning simulation domain (not one per mote), each domain
// worker folds its motes' answers — served through the same
// store/replica/proxy path single queries use — into a query.Partial,
// and a merge stage combines the per-domain partials into one answer
// with honest combined error bounds. An N-mote aggregate spanning any
// number of domains therefore costs exactly one engine submission.
//
// Continuous specs re-arm on the simulation clock: a self-re-arming
// wakeup event on the anchor domain's kernel scatters a round at each
// exact period instant, and a merge goroutine assembles the rounds in
// order and pushes them down the stream. Multi-domain workers drain
// their command queues at bounded virtual-time intervals while advancing
// (see shard.advance), so the other domains' contributions to a round
// execute in the middle of one long Run instead of piling up behind it.

import (
	"context"
	"errors"
	"fmt"

	"presto/internal/obs"
	"presto/internal/query"
	"presto/internal/radio"
	"presto/internal/simtime"
)

// specTargets resolves a spec's selector against the deployment and
// groups the target motes by owning shard, preserving global mote order
// within each group.
func (n *Network) specTargets(spec query.Spec) (map[*shard][]radio.NodeID, error) {
	targets := spec.Select.Resolve(n.MoteIDs())
	if len(targets) == 0 {
		return nil, fmt.Errorf("core: %w", query.ErrNoMotes)
	}
	groups := make(map[*shard][]radio.NodeID)
	for _, m := range targets {
		s, err := n.shardFor(m)
		if err != nil {
			return nil, err
		}
		groups[s] = append(groups[s], m)
	}
	return groups, nil
}

// gatherSpec runs on a shard worker: it issues every target mote's query
// against the domain's unified store and folds the answers into one
// RoundPartial, delivered on parts when the last answer lands. Answers
// that need a mote rendezvous resolve while the worker settles (or
// during the remaining chunks of an in-progress advance); the per-domain
// pull coalescing applies across the motes of the round as usual.
// When tr is non-nil the domain's store annotates every routing
// decision onto it while the round's queries execute on this worker
// (and, for answers that resolve later via rendezvous, when they land);
// nil tr — the common case — adds one predictable branch per query.
func gatherSpec(sh *shard, spec query.Spec, motes []radio.NodeID, parts chan<- query.RoundPartial, tr *obs.Trace) {
	agg := spec.Type == query.Agg
	if tr != nil {
		sh.st.SetTrace(tr, sh.domain)
		defer sh.st.SetTrace(nil, 0)
	}
	sp := &query.RoundPartial{Domain: sh.domain, Partial: query.NewPartialFor(spec)}
	// Aggregate push-down: motes whose spans the archive covers within
	// precision fold straight into the partial (store.ExecuteFold) — no
	// Answer materialization, no Result, no pending-query bookkeeping.
	// Only the leftovers pay the proxy path below.
	var fallback []radio.NodeID
	if agg {
		for _, m := range motes {
			done, err := sh.st.ExecuteFold(spec.QueryFor(m), &sp.Partial)
			switch {
			case err != nil:
				sp.Failed++
			case done:
			default:
				fallback = append(fallback, m)
			}
		}
	} else {
		fallback = motes
	}
	if len(fallback) == 0 {
		parts <- *sp
		return
	}
	remaining := len(fallback)
	onDone := func(r query.Result, ok bool) {
		switch {
		case !ok:
			sp.Failed++
		case agg:
			sp.Partial.ObserveResult(r)
		default:
			sp.Results = append(sp.Results, r)
		}
		remaining--
		if remaining == 0 {
			parts <- *sp
		}
	}
	// One shared callback and a pendingQuery slab instead of a closure +
	// allocation per mote.
	pqs := make([]pendingQuery, len(fallback))
	for i, m := range fallback {
		pqs[i].fn = onDone
		sh.submit(spec.QueryFor(m), &pqs[i])
	}
}

// GatherLocal executes one bound round against the local domains owning
// the given motes and blocks for their folded partials, tagged by global
// domain index. It is how a cluster site serves a scatter frame: the
// per-mote answers are folded here, in the process that owns the data
// (push-down), and only what this returns crosses the transport. The
// spec must already be concrete (BindWindow applied — a trailing window
// must resolve against the coordinator's clock, not each site's); motes
// not hosted by this process are an error, since the coordinator's
// layout and the site's must agree.
func (n *Network) GatherLocal(spec query.Spec, motes []radio.NodeID) ([]query.RoundPartial, error) {
	parts, expect, err := n.GatherStart(spec, motes, 0, nil)
	if err != nil {
		return nil, err
	}
	out := make([]query.RoundPartial, 0, expect)
	for i := 0; i < expect; i++ {
		out = append(out, <-parts)
	}
	query.SortRoundPartials(out)
	return out, nil
}

// GatherStart enqueues one concrete round against the local domains
// owning motes and returns the channel their folded partials arrive on,
// plus how many to expect (one per owning domain, in arrival order —
// sort by Domain before merging). It is GatherLocal's non-blocking half:
// the cluster coordinator uses it to enqueue a round's local gathers
// before issuing the next advance lease, so the round executes while the
// window advances instead of quiescing the engine.
//
// When at is ahead of a domain's clock, that domain's fold runs as a
// kernel event at exactly that instant — a round scheduled mid-advance
// executes at its nominal time, not wherever the worker happens to be.
// at <= the domain clock (or zero) folds at the current clock, which is
// the converged floor after an advance.
//
// A non-nil tr collects each target mote's routing decision as the
// round executes — the cluster site threads the scatter frame's trace
// context through here so the decisions ride back in the partials.
func (n *Network) GatherStart(spec query.Spec, motes []radio.NodeID, at simtime.Time, tr *obs.Trace) (<-chan query.RoundPartial, int, error) {
	if err := spec.Validate(); err != nil {
		return nil, 0, err
	}
	if spec.Trailing > 0 {
		return nil, 0, errors.New("core: GatherLocal needs a concrete window (apply Spec.BindWindow at the coordinator)")
	}
	if len(motes) == 0 {
		return nil, 0, fmt.Errorf("core: %w", query.ErrNoMotes)
	}
	runs, err := n.groupRuns(motes)
	if err != nil {
		return nil, 0, err
	}
	n.queriesSubmitted.Add(1)
	parts := make(chan query.RoundPartial, len(runs))
	for _, g := range runs {
		s, ms := g.s, g.motes
		fn := func(sh *shard) { gatherSpec(sh, spec, ms, parts, tr) }
		if at > 0 {
			gather := fn
			fn = func(sh *shard) {
				if at > sh.sim.Now() {
					sh.sim.ScheduleAt(at, func() { gather(sh) })
					return
				}
				gather(sh)
			}
		}
		if !s.enqueue(shardCmd{fn: fn}) {
			parts <- query.RoundPartial{
				Domain: s.domain, Partial: query.NewPartialFor(spec), Failed: len(ms),
			}
		}
	}
	return parts, len(runs), nil
}

// shardRun is one owning domain's slice of a round's target motes.
type shardRun struct {
	s     *shard
	motes []radio.NodeID
}

// groupRuns groups target motes by owning shard. Resolved mote lists are
// ascending and domains partition the id space contiguously, so a
// single pass over the list finds each domain's run without a map — and
// the runs alias the input, so the common case allocates only the run
// slice. An out-of-order list (an explicit selector like Motes(9, 2))
// falls back to map grouping, preserving selector order within groups.
func (n *Network) groupRuns(motes []radio.NodeID) ([]shardRun, error) {
	runs := make([]shardRun, 0, 4)
	start := 0
	cur, err := n.shardFor(motes[0])
	if err != nil {
		return nil, err
	}
	for i := 1; i < len(motes); i++ {
		if motes[i] < motes[i-1] {
			return n.groupRunsUnsorted(motes)
		}
		s, err := n.shardFor(motes[i])
		if err != nil {
			return nil, err
		}
		if s != cur {
			for _, g := range runs {
				if g.s == s {
					// Non-contiguous partition: a shard's motes must land
					// in one group (one partial per domain), so runs can't
					// represent this list.
					return n.groupRunsUnsorted(motes)
				}
			}
			runs = append(runs, shardRun{s: cur, motes: motes[start:i]})
			cur, start = s, i
		}
	}
	return append(runs, shardRun{s: cur, motes: motes[start:]}), nil
}

func (n *Network) groupRunsUnsorted(motes []radio.NodeID) ([]shardRun, error) {
	groups := make(map[*shard][]radio.NodeID)
	order := make([]*shard, 0, 4)
	for _, m := range motes {
		s, err := n.shardFor(m)
		if err != nil {
			return nil, err
		}
		if _, ok := groups[s]; !ok {
			order = append(order, s)
		}
		groups[s] = append(groups[s], m)
	}
	runs := make([]shardRun, 0, len(order))
	for _, s := range order {
		runs = append(runs, shardRun{s: s, motes: groups[s]})
	}
	return runs, nil
}

// specRound is one in-flight round of a spec: its sequence number, the
// virtual instant it fired at, the spec as bound for this round (a
// trailing window resolves to a fresh [at-d, at] each round), and the
// channel its per-domain partials arrive on (buffered to the domain
// count, so workers never block).
type specRound struct {
	seq    int
	at     simtime.Time
	spec   query.Spec
	parts  chan query.RoundPartial
	expect int
}

// newSpecRound allocates a round and scatters it: the calling shard (if
// any) gathers inline — a continuous round fires on the anchor's kernel
// and snapshots that domain at the exact round instant — and every other
// owning domain gets one command. Domains that cannot accept work
// (engine closed) contribute a failed partial immediately.
func (n *Network) newSpecRound(spec query.Spec, groups map[*shard][]radio.NodeID, seq int, at simtime.Time, self *shard, tr *obs.Trace) *specRound {
	n.queriesSubmitted.Add(1)
	spec = spec.BindWindow(at)
	rs := &specRound{seq: seq, at: at, spec: spec, parts: make(chan query.RoundPartial, len(groups)), expect: len(groups)}
	for s, motes := range groups {
		if s == self {
			gatherSpec(s, spec, motes, rs.parts, tr)
			continue
		}
		s, motes := s, motes
		if !s.enqueue(shardCmd{fn: func(sh *shard) { gatherSpec(sh, spec, motes, rs.parts, tr) }}) {
			rs.parts <- query.RoundPartial{
				Domain: s.domain, Partial: query.NewPartialFor(spec), Failed: len(motes),
			}
		}
	}
	return rs
}

// mergeRound blocks for every domain's partial and hands them to the
// query package's merge stage (domain-ascending, so the fold is
// bit-identical to a cluster's two-level merge of the same domains).
// Workers always deliver — queries that can never complete fail their
// callbacks instead of wedging — so this terminates.
func mergeRound(rs *specRound) query.SetResult {
	parts := make([]query.RoundPartial, 0, rs.expect)
	for i := 0; i < rs.expect; i++ {
		parts = append(parts, <-rs.parts)
	}
	return query.MergeRounds(rs.spec, rs.seq, rs.at, parts)
}

// SubmitSpec posts a declarative set query to the engine. The returned
// channel yields one SetResult for a one-shot spec, then closes; a
// Continuous spec yields a result every spec period of virtual time
// until ctx is cancelled (or the Until horizon passes), then closes.
// Each round is a single engine submission regardless of how many motes
// or domains it spans.
//
// Cancellation is prompt and leak-free: the driver goroutine exits on
// ctx.Done even when no receiver drains the channel.
func (n *Network) SubmitSpec(ctx context.Context, spec query.Spec) (<-chan query.SetResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	groups, err := n.specTargets(spec)
	if err != nil {
		return nil, err
	}
	// Fail fast after Close (Close shuts every shard down). A Close
	// racing a submitted round is still safe: the round's motes are
	// reported in SetResult.Failed instead.
	if n.shards[0].isClosed() {
		return nil, ErrClosed
	}
	// An explain/slow-query trace rides the context; nil otherwise.
	tr := obs.TraceFrom(ctx)
	out := make(chan query.SetResult, 1)
	if spec.Continuous == nil {
		// A one-shot NOW spec naming a single mote is exactly a legacy
		// Submit — route it there so it keeps the engine's wired-replica
		// fast path (cross-domain NOW queries served from the replica
		// mirror when it meets precision and freshness). Scatter rounds
		// execute at the owning domains instead: a set snapshot wants
		// the authoritative data, and its per-domain partials cannot
		// depend on another domain's replica decision. A traced query
		// skips the bypass: the scatter path is the one that annotates
		// each routing decision, and one query through it costs little.
		if tr == nil && spec.Type == query.Now && len(groups) == 1 {
			for _, motes := range groups {
				if len(motes) != 1 {
					break
				}
				ch, err := n.Submit(spec.QueryFor(motes[0]))
				if err != nil {
					return nil, err
				}
				go func() {
					defer close(out)
					res := query.SetResult{At: n.Now()}
					if r, ok := <-ch; ok {
						res.Results = []query.Result{r}
					} else {
						res.Failed = 1
					}
					select {
					case out <- res:
					case <-ctx.Done():
					}
				}()
				return out, nil
			}
		}
		go func() {
			defer close(out)
			if tr != nil { // gate the Sprintf, not just the span: untraced rounds must not allocate
				tr.Span("scatter", fmt.Sprintf("%d domains", len(groups)))
			}
			res := mergeRound(n.newSpecRound(spec, groups, 0, n.Now(), nil, tr))
			if tr != nil {
				tr.Span("merge", fmt.Sprintf("%d results, %d failed", len(res.Results), res.Failed))
			}
			select {
			case out <- res:
			case <-ctx.Done():
			}
		}()
		return out, nil
	}

	// Standing query. The anchor domain's kernel (the one owning the
	// lowest target mote) is the metronome: a self-re-arming wakeup event
	// fires every spec period of virtual time and scatters a round at
	// that exact instant — the anchor's own motes gather inline, other
	// domains by command — so the round cadence tracks the simulation
	// clock no matter how fast wall-clock Run outpaces the consumer. A
	// merge goroutine assembles the rounds in order and delivers them
	// with backpressure; kernels never block on it. Virtual time standing
	// still (no Run in flight) means no new rounds — no new data can
	// exist either.
	cont := *spec.Continuous
	anchor := n.anchorShard(groups)
	maxRounds := 0
	if cont.Until > 0 {
		// The rounds whose instants fall at or before the Until horizon.
		maxRounds = int(cont.Until / cont.Every)
		if maxRounds == 0 {
			close(out)
			return out, nil
		}
	}
	// In-flight rounds awaiting merge. The buffer bounds memory when the
	// simulation sprints far ahead of the consumer; a full buffer skips
	// rounds (keeping sequence numbers dense) rather than stalling any
	// kernel. fire is the channel's only sender and runs on the anchor
	// worker, so the length check makes its send non-blocking, and it can
	// close the channel when a bounded stream's horizon passes — the
	// merge side then terminates even if backpressure skipped rounds.
	rounds := make(chan *specRound, 256)
	started := 0 // rounds scattered (anchor-worker state)
	fired := 0   // nominal instants reached, skips included
	var fire func(s *shard)
	fire = func(s *shard) {
		if ctx.Err() != nil {
			return // cancelled: stop re-arming; the merge side is gone
		}
		if len(rounds) < cap(rounds) {
			rounds <- n.newSpecRound(spec, groups, started, s.sim.Now(), s, nil)
			started++
		}
		fired++
		if maxRounds == 0 || fired < maxRounds {
			s.sim.Schedule(cont.Every, func() { fire(s) })
		} else {
			close(rounds) // horizon reached: no further sends, ever
		}
	}
	if !anchor.enqueue(shardCmd{fn: func(s *shard) {
		s.sim.Schedule(cont.Every, func() { fire(s) })
	}}) {
		return nil, ErrClosed
	}
	go func() {
		defer close(out)
		for {
			var rs *specRound
			var ok bool
			select {
			case <-ctx.Done():
				return
			case <-anchor.quit:
				return // engine closed: the stream dies with it
			case rs, ok = <-rounds:
				if !ok {
					return // bounded stream: horizon passed, all rounds merged
				}
			}
			res := mergeRound(rs)
			select {
			case out <- res:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out, nil
}

// anchorShard picks the metronome domain for a continuous spec: the one
// owning the lowest target mote id, so the choice is deterministic.
func (n *Network) anchorShard(groups map[*shard][]radio.NodeID) *shard {
	var anchor *shard
	best := radio.NodeID(0)
	for s, motes := range groups {
		if anchor == nil || motes[0] < best {
			anchor, best = s, motes[0]
		}
	}
	return anchor
}

// ---------------------------------------------------------------------------
// Client facade

// SpecSubmitter is the engine seam the Client facade sits on: anything
// that can scatter a declarative spec and stream back merged rounds. The
// in-process Network implements it directly; cluster.Coordinator
// implements it over a transport — the same Client (and therefore the
// same application code) front-ends both.
type SpecSubmitter interface {
	SubmitSpec(ctx context.Context, spec query.Spec) (<-chan query.SetResult, error)
}

// Client is the user-facing query interface over a deployment: pose a
// declarative query.Spec, receive a ResultStream. It replaces the bare
// single-mote callback/channel APIs (Execute, Submit, ExecuteWait),
// which remain as deprecated shims.
type Client struct {
	e SpecSubmitter
}

// NewClient wraps any spec engine — an in-process Network or a cluster
// Coordinator — in the query facade.
func NewClient(e SpecSubmitter) *Client { return &Client{e: e} }

// Client returns the deployment's query facade.
func (n *Network) Client() *Client { return NewClient(n) }

// ResultStream delivers the results of one Spec. One-shot specs deliver
// a single SetResult and close; Continuous specs deliver one per period
// until cancelled. Close (or cancelling the context passed to Query)
// tears the standing query down without leaking goroutines or waiters.
type ResultStream struct {
	ch     <-chan query.SetResult
	cancel context.CancelFunc
}

// Results is the delivery channel. It closes when the spec is done:
// after the single result of a one-shot spec, after the Until horizon of
// a bounded continuous spec, or after cancellation.
func (s *ResultStream) Results() <-chan query.SetResult { return s.ch }

// Next blocks for the next delivery. ok is false when the stream is
// exhausted or ctx is cancelled first.
func (s *ResultStream) Next(ctx context.Context) (res query.SetResult, ok bool) {
	select {
	case res, ok = <-s.ch:
		return res, ok
	case <-ctx.Done():
		return query.SetResult{}, false
	}
}

// Close cancels the spec. Safe to call multiple times; pending rounds
// are abandoned and the channel closes shortly after.
func (s *ResultStream) Close() { s.cancel() }

// Query poses a declarative spec against the deployment. The spec's
// selector resolves at submission time; every round costs one engine
// submission regardless of mote or domain count. Cancel ctx (or Close
// the stream) to tear down a standing query.
func (c *Client) Query(ctx context.Context, spec query.Spec) (*ResultStream, error) {
	ctx, cancel := context.WithCancel(ctx)
	ch, err := c.e.SubmitSpec(ctx, spec)
	if err != nil {
		cancel()
		return nil, err
	}
	return &ResultStream{ch: ch, cancel: cancel}, nil
}

// QueryOne poses a one-shot spec and blocks for its single result — the
// Spec-era ExecuteWait.
func (c *Client) QueryOne(ctx context.Context, spec query.Spec) (query.SetResult, error) {
	if spec.Continuous != nil {
		return query.SetResult{}, errors.New("core: QueryOne on a continuous spec (use Query)")
	}
	st, err := c.Query(ctx, spec)
	if err != nil {
		return query.SetResult{}, err
	}
	defer st.Close()
	res, ok := st.Next(ctx)
	if !ok {
		if ctx.Err() != nil {
			return query.SetResult{}, ctx.Err()
		}
		return query.SetResult{}, errors.New("core: spec never completed")
	}
	return res, nil
}
