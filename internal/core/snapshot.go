package core

// Domain snapshots: one versioned, checksummed blob per simulation
// domain, composed from every layer's Snapshot stream in a fixed order —
// kernel, medium, motes (ascending id), proxies (build order), index,
// store, bridge. The format is deterministic end to end: snapshotting
// the same domain at the same virtual instant always produces the same
// bytes, which is what the migration and re-join tests enforce, and
// capturing a snapshot never perturbs the domain (every layer reads its
// state without side effects), so checkpoint-without-drop is free.
//
// What is NOT in a snapshot: deployment topology (endpoint attachment,
// proxy registration, replica wiring — all derived from the Config and
// rebuilt identically by the restoring side) and scheduled closures
// (each layer's restore re-registers its own pending work: the medium
// re-launches radio flights, motes re-arm their tickers, the bridge
// re-launches wired deliveries). AutoRetrain tickers are engine-level
// wiring, not domain state — reinstall them after a restore if needed.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"presto/internal/radio"
	"presto/internal/snap"
)

// domainSnapVersion is bumped whenever any layer's block format changes.
const domainSnapVersion = 1

var domainSnapMagic = []byte("PDSN")

// SnapshotDomain writes hosted domain d's complete state to w as one
// self-describing blob. It runs on the domain's worker, between
// commands; the domain must be quiescent (no queries settling — the
// proxy layer additionally refuses if any pull rendezvous is in flight).
func (n *Network) SnapshotDomain(d int, w io.Writer) error {
	s, ok := n.localShard(d)
	if !ok {
		return fmt.Errorf("core: domain %d not hosted by this process", d)
	}
	var snapErr error
	if !s.call(func(s *shard) { snapErr = s.snapshot(w) }) {
		return ErrClosed
	}
	return snapErr
}

// RestoreDomain reinstalls domain d's state from a blob written by
// SnapshotDomain — on this or any other process hosting a freshly built
// (or freshly adopted) instance of the same domain under the same
// config. After it returns the domain behaves bit-for-bit as the
// snapshotted one would: same clock, same pending radio traffic, same
// models, same answers.
func (n *Network) RestoreDomain(d int, r io.Reader) error {
	s, ok := n.localShard(d)
	if !ok {
		return fmt.Errorf("core: domain %d not hosted by this process", d)
	}
	var restErr error
	if !s.call(func(s *shard) { restErr = s.restore(r) }) {
		return ErrClosed
	}
	return restErr
}

func (s *shard) snapshot(w io.Writer) error {
	if len(s.pending) != 0 {
		return fmt.Errorf("core: domain %d has %d queries settling", s.domain, len(s.pending))
	}
	cw := snap.NewWriter(w)
	hdr := make([]byte, 0, 13)
	hdr = append(hdr, domainSnapMagic...)
	hdr = append(hdr, domainSnapVersion)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(s.domain))
	if _, err := cw.Write(hdr); err != nil {
		return err
	}
	if err := s.sim.Snapshot(cw); err != nil {
		return fmt.Errorf("core: domain %d kernel: %w", s.domain, err)
	}
	if err := s.medium.Snapshot(cw); err != nil {
		return fmt.Errorf("core: domain %d medium: %w", s.domain, err)
	}
	for _, m := range s.motes {
		if err := m.Snapshot(cw); err != nil {
			return fmt.Errorf("core: domain %d: %w", s.domain, err)
		}
	}
	for _, p := range s.proxies {
		if err := p.Snapshot(cw); err != nil {
			return fmt.Errorf("core: domain %d: %w", s.domain, err)
		}
	}
	if err := s.ix.Snapshot(cw); err != nil {
		return fmt.Errorf("core: domain %d index: %w", s.domain, err)
	}
	if err := s.st.Snapshot(cw); err != nil {
		return fmt.Errorf("core: domain %d store: %w", s.domain, err)
	}
	// The bridge block exists only when this domain has a bridge inbox
	// (wired-replica deployments attach one per domain; others don't).
	attached := s.bridge != nil && s.bridge.Attached(radio.DomainID(s.domain))
	bridged := byte(0)
	if attached {
		bridged = 1
	}
	if _, err := cw.Write([]byte{bridged}); err != nil {
		return err
	}
	if attached {
		if err := s.bridge.SnapshotDomain(radio.DomainID(s.domain), cw); err != nil {
			return fmt.Errorf("core: domain %d bridge: %w", s.domain, err)
		}
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], cw.Sum32())
	_, err := w.Write(sum[:])
	return err
}

func (s *shard) restore(r io.Reader) error {
	if len(s.pending) != 0 {
		return fmt.Errorf("core: domain %d has %d queries settling", s.domain, len(s.pending))
	}
	cr := snap.NewReader(r)
	var hdr [13]byte
	if _, err := io.ReadFull(cr, hdr[:]); err != nil {
		return fmt.Errorf("%w: domain header: %v", snap.ErrCorrupt, err)
	}
	if !bytes.Equal(hdr[:4], domainSnapMagic) {
		return fmt.Errorf("%w: bad magic %q", snap.ErrCorrupt, hdr[:4])
	}
	if hdr[4] != domainSnapVersion {
		return fmt.Errorf("core: snapshot version %d, this build reads %d", hdr[4], domainSnapVersion)
	}
	if dom := int(binary.LittleEndian.Uint64(hdr[5:])); dom != s.domain {
		return fmt.Errorf("core: snapshot of domain %d offered to domain %d", dom, s.domain)
	}
	// Kernel first: it clears the event heap and sets the clock, then
	// each layer re-registers its own pending work against it.
	if err := s.sim.Restore(cr); err != nil {
		return fmt.Errorf("core: domain %d kernel: %w", s.domain, err)
	}
	if err := s.medium.Restore(cr); err != nil {
		return fmt.Errorf("core: domain %d medium: %w", s.domain, err)
	}
	for _, m := range s.motes {
		if err := m.Restore(cr); err != nil {
			return fmt.Errorf("core: domain %d: %w", s.domain, err)
		}
	}
	for _, p := range s.proxies {
		if err := p.Restore(cr); err != nil {
			return fmt.Errorf("core: domain %d: %w", s.domain, err)
		}
	}
	if err := s.ix.Restore(cr); err != nil {
		return fmt.Errorf("core: domain %d index: %w", s.domain, err)
	}
	if err := s.st.Restore(cr); err != nil {
		return fmt.Errorf("core: domain %d store: %w", s.domain, err)
	}
	var bridged [1]byte
	if _, err := io.ReadFull(cr, bridged[:]); err != nil {
		return fmt.Errorf("%w: bridge flag: %v", snap.ErrCorrupt, err)
	}
	attached := s.bridge != nil && s.bridge.Attached(radio.DomainID(s.domain))
	if (bridged[0] == 1) != attached {
		return fmt.Errorf("core: domain %d bridge presence mismatch (snapshot %d)", s.domain, bridged[0])
	}
	if attached {
		if err := s.bridge.RestoreDomain(radio.DomainID(s.domain), cr); err != nil {
			return fmt.Errorf("core: domain %d bridge: %w", s.domain, err)
		}
	}
	want := cr.Sum32()
	var sum [4]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return fmt.Errorf("%w: checksum: %v", snap.ErrCorrupt, err)
	}
	if got := binary.LittleEndian.Uint32(sum[:]); got != want {
		return fmt.Errorf("%w: checksum 0x%08x, computed 0x%08x", snap.ErrCorrupt, got, want)
	}
	return nil
}
