package core

// Per-query freshness bounds (query.Query.MaxStaleness) end to end: a NOW
// query with a tight bound must bypass a stale wired replica, settle in
// the owning domain, and pay the mote rendezvous there; a loose bound
// keeps the replica fast path. Run with -race: the staleness decision
// reads the owning domain's clock snapshot from the submitting goroutine
// while both domain workers advance.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"presto/internal/flash"
	"presto/internal/gen"
	"presto/internal/proxy"
	"presto/internal/query"
	"presto/internal/radio"
	"presto/internal/simtime"
)

// freshnessNet builds a 2-proxy, 2-domain deployment with wired
// replication and lossless radio, warmed up long enough that the replica
// mirrors confirmed data for the remote motes.
func freshnessNet(t *testing.T) *Network {
	t.Helper()
	const proxies, motesPer = 2, 2
	c := gen.DefaultTempConfig()
	c.Sensors = proxies * motesPer
	c.Days = 1
	c.Seed = 7
	traces, err := gen.Temperature(c)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Seed = 7
	cfg.Proxies = proxies
	cfg.MotesPerProxy = motesPer
	cfg.Shards = 2
	cfg.Radio.LossProb = 0
	cfg.Radio.JitterMax = 0
	cfg.Delta = 0.25 // frequent pushes keep the mirror warm
	cfg.Traces = traces
	cfg.WiredFirstProxy = true
	n, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	n.Start()
	n.Run(2 * time.Hour)
	return n
}

func TestFreshnessBoundBypassesStaleReplica(t *testing.T) {
	n := freshnessNet(t)
	remote := radio.NodeID(motesPerProxyFirstRemote(n)) // a domain-1 mote

	// Loose bound: the replica's mirror is well within a day, so the
	// wired fast path must serve without touching the owning domain.
	res, err := n.ExecuteWait(query.Query{
		Type: query.Now, Mote: remote, Precision: 5, MaxStaleness: 24 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, served, _, _ := n.EngineStats(); served != 1 {
		t.Fatalf("replica served %d queries, want 1", served)
	}
	if n.ReplicaBypassed() != 0 {
		t.Fatalf("loose bound bypassed the replica")
	}
	if res.Answer.Source == proxy.FromPull {
		t.Fatalf("loose bound paid a rendezvous: %v", res.Answer.Source)
	}

	// Tight bound: no snapshot can be one nanosecond old, so the replica
	// is bypassed and the owning domain's proxy must pay a mote
	// rendezvous rather than serve its own stale cache/model view.
	res, err = n.ExecuteWait(query.Query{
		Type: query.Now, Mote: remote, Precision: 5, MaxStaleness: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n.ReplicaBypassed() != 1 {
		t.Fatalf("replica bypassed %d times, want 1", n.ReplicaBypassed())
	}
	if _, served, _, _ := n.EngineStats(); served != 1 {
		t.Fatalf("stale replica still served the tight query")
	}
	if res.Answer.Source != proxy.FromPull {
		t.Fatalf("tight bound answered from %v, want pull (owning-domain rendezvous)", res.Answer.Source)
	}
	// The rendezvous was paid by the owning proxy, not the replica.
	st, err := n.ProxyStatsFor(remote)
	if err != nil {
		t.Fatal(err)
	}
	if st.StalenessPulls != 1 {
		t.Fatalf("owning proxy staleness pulls %d, want 1", st.StalenessPulls)
	}
}

// motesPerProxyFirstRemote returns the first mote owned by a non-zero
// domain (proxy 1's first mote).
func motesPerProxyFirstRemote(n *Network) int {
	return n.cfg.MotesPerProxy + 1
}

func TestFreshnessBoundSameDomainReplica(t *testing.T) {
	// Single domain, two proxies: the store-level replica path (proxy 0
	// mirrors proxy 1) must also honor the bound — a tight-staleness NOW
	// query skips the replica and forces the managing proxy's rendezvous.
	const proxies, motesPer = 2, 2
	c := gen.DefaultTempConfig()
	c.Sensors = proxies * motesPer
	c.Days = 1
	c.Seed = 7
	traces, err := gen.Temperature(c)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Seed = 7
	cfg.Proxies = proxies
	cfg.MotesPerProxy = motesPer
	cfg.Shards = 1
	cfg.Radio.LossProb = 0
	cfg.Radio.JitterMax = 0
	cfg.Delta = 0.25
	cfg.Traces = traces
	cfg.WiredFirstProxy = true
	n, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.Start()
	n.Run(2 * time.Hour)

	remote := radio.NodeID(motesPer + 1)
	res, err := n.ExecuteWait(query.Query{
		Type: query.Now, Mote: remote, Precision: 5, MaxStaleness: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ss := n.StoreStats()
	if ss.ReplicaStale != 1 {
		t.Fatalf("store stale-rejections %d, want 1", ss.ReplicaStale)
	}
	if res.Answer.Source != proxy.FromPull {
		t.Fatalf("answer from %v, want pull", res.Answer.Source)
	}

	// And a loose bound serves from the replica's local view.
	res, err = n.ExecuteWait(query.Query{
		Type: query.Now, Mote: remote, Precision: 5, MaxStaleness: 24 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer.Source == proxy.FromPull {
		t.Fatalf("loose bound paid a rendezvous")
	}
	if ss := n.StoreStats(); ss.ReplicaStale != 1 {
		t.Fatalf("loose bound rejected as stale: %+v", ss)
	}
}

func TestFreshnessBoundPastTail(t *testing.T) {
	// Regression: a PAST query whose window tail overlaps "now" used to
	// ignore MaxStaleness entirely — the proxy would extrapolate the tail
	// from a stale model snapshot. Now the bound forces a rendezvous when
	// the confirmed snapshot is older than the bound, while purely
	// historical windows are untouched.
	c := gen.DefaultTempConfig()
	c.Sensors = 2
	c.Days = 2
	c.Seed = 9
	traces, err := gen.Temperature(c)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Seed = 9
	cfg.Proxies = 1
	cfg.MotesPerProxy = 2
	cfg.Radio.LossProb = 0
	cfg.Radio.JitterMax = 0
	cfg.Delta = 25 // model never misses by 25 °C: no pushes after bootstrap
	cfg.Traces = traces
	n, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if _, err := n.Bootstrap(6*time.Hour, 24, 25); err != nil {
		t.Fatal(err)
	}
	n.Run(3 * time.Hour) // confirmed snapshot ages ~3h with no pushes
	now := n.Now()

	// Unbounded tail query: the model's 25-degree bound satisfies the
	// loose precision, so the proxy answers from its (stale) local view.
	res, err := n.ExecuteWait(query.Query{
		Type: query.Past, Mote: 1, T0: now - 30*simtime.Minute, T1: now, Precision: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer.Source == proxy.FromPull {
		t.Fatalf("unbounded tail query paid a rendezvous: %v", res.Answer.Source)
	}
	if st, _ := n.ProxyStatsFor(1); st.StalenessPulls != 0 {
		t.Fatalf("unbounded query counted a staleness pull")
	}

	// The same window under a tight bound: the snapshot is hours old, so
	// the proxy must pull instead of extrapolating the tail.
	res, err = n.ExecuteWait(query.Query{
		Type: query.Past, Mote: 1, T0: now - 30*simtime.Minute, T1: now, Precision: 30,
		MaxStaleness: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer.Source != proxy.FromPull {
		t.Fatalf("bounded tail query answered from %v, want pull", res.Answer.Source)
	}
	st, err := n.ProxyStatsFor(1)
	if err != nil {
		t.Fatal(err)
	}
	if st.StalenessPulls != 1 {
		t.Fatalf("staleness pulls %d, want 1", st.StalenessPulls)
	}
	if ss := n.StoreStats(); ss.ArchiveStale == 0 {
		t.Fatalf("archive never declined the stale tail: %+v", ss)
	}

	// A purely historical window (inside the streamed bootstrap) under the
	// same tight bound: no overlap with now, so the archive serves as if
	// unbounded.
	res, err = n.ExecuteWait(query.Query{
		Type: query.Past, Mote: 1, T0: 2 * simtime.Hour, T1: 4 * simtime.Hour, Precision: 0.5,
		MaxStaleness: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer.Source != proxy.FromArchive {
		t.Fatalf("historical bounded query answered from %v, want archive", res.Answer.Source)
	}
	// AGG rides the same path.
	res, err = n.ExecuteWait(query.Query{
		Type: query.Agg, Agg: query.Mean, Mote: 1, T0: 2 * simtime.Hour, T1: 4 * simtime.Hour,
		Precision: 0.5, MaxStaleness: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer.Source != proxy.FromArchive {
		t.Fatalf("bounded AGG answered from %v, want archive", res.Answer.Source)
	}
}

func TestWaveletAgedArchiveConcurrentQueries(t *testing.T) {
	// Wavelet round-trip on aged segments under -race: a tiny flash device
	// forces aging compactions during the streamed bootstrap, then
	// concurrent PAST queries reconstruct wavelet segments on two domain
	// workers while the submitting goroutines race. Every archive-served
	// entry must stay within its (widened) error bound of ground truth —
	// bounds never tighter than the raw records they summarize.
	c := gen.DefaultTempConfig()
	c.Sensors = 4
	c.Days = 2
	c.Seed = 5
	traces, err := gen.Temperature(c)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Seed = 5
	cfg.Proxies = 2
	cfg.MotesPerProxy = 2
	cfg.Shards = 2
	cfg.Radio.LossProb = 0
	cfg.Radio.JitterMax = 0
	cfg.Traces = traces
	cfg.StoreBackend = "flash"
	// ~819 records of capacity per domain vs 2 motes x 720 streamed
	// minutes: several compactions per domain.
	cfg.StoreFlash = flash.Geometry{PageSize: 256, PagesPerBlock: 8, NumBlocks: 8}
	cfg.StoreAging = "wavelet"
	n, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if _, err := n.Bootstrap(12*time.Hour, 24, 1.0); err != nil {
		t.Fatal(err)
	}
	bs := n.StoreBackendStats()
	if bs.Compactions == 0 || bs.WaveletChunks == 0 {
		t.Fatalf("bootstrap did not force wavelet aging: %+v", bs)
	}

	ids := n.MoteIDs()
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for qi := 0; qi < 8; qi++ {
				id := ids[(g+qi)%len(ids)]
				t0 := simtime.Time(1+(g*8+qi)%8) * simtime.Hour
				res, err := n.ExecuteWait(query.Query{
					Type: query.Past, Mote: id, T0: t0, T1: t0 + simtime.Hour, Precision: 10,
				})
				if err != nil {
					errs <- err.Error()
					return
				}
				if len(res.Answer.Entries) == 0 {
					errs <- "empty answer"
					continue
				}
				for _, e := range res.Answer.Entries {
					truth, err := n.Truth(id, e.T)
					if err != nil {
						errs <- err.Error()
						continue
					}
					diff := e.V - truth
					if diff < 0 {
						diff = -diff
					}
					// 1e-3 covers the float32 quantization of pushed
					// values archived with a zero bound.
					if diff > e.ErrBound+1e-3 {
						errs <- fmt.Sprintf("mote %d at %v: |%v - %v| outside bound %v",
							id, e.T, e.V, truth, e.ErrBound)
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
	if ss := n.StoreStats(); ss.ArchiveServed == 0 {
		t.Fatalf("no query was served from the aged archive: %+v", ss)
	}
}

func TestArchiveServesCoveredRange(t *testing.T) {
	// After a streamed bootstrap the domain archive covers the training
	// window: a PAST range query inside it must be served whole from the
	// backend (FromArchive) without touching the proxy query path — on
	// both backends.
	for _, backend := range []string{"mem", "flash"} {
		t.Run(backend, func(t *testing.T) {
			c := gen.DefaultTempConfig()
			c.Sensors = 2
			c.Days = 2
			c.Seed = 3
			traces, err := gen.Temperature(c)
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig()
			cfg.Seed = 3
			cfg.Proxies = 1
			cfg.MotesPerProxy = 2
			cfg.Radio.LossProb = 0
			cfg.Radio.JitterMax = 0
			cfg.Traces = traces
			cfg.StoreBackend = backend
			n, err := Build(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer n.Close()
			if _, err := n.Bootstrap(12*time.Hour, 24, 1.0); err != nil {
				t.Fatal(err)
			}
			res, err := n.ExecuteWait(query.Query{
				Type: query.Past, Mote: 1,
				T0: 2 * simtime.Hour, T1: 6 * simtime.Hour, Precision: 0.5,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Answer.Source != proxy.FromArchive {
				t.Fatalf("answer from %v, want archive", res.Answer.Source)
			}
			if len(res.Answer.Entries) == 0 {
				t.Fatal("archive answer has no entries")
			}
			ss := n.StoreStats()
			if ss.ArchiveServed != 1 {
				t.Fatalf("archive served %d, want 1", ss.ArchiveServed)
			}
			bs := n.StoreBackendStats()
			if bs.Appends == 0 || bs.QueryRanges == 0 {
				t.Fatalf("backend stats not threaded: %+v", bs)
			}
			if backend == "flash" && bs.PagesWritten == 0 {
				t.Fatalf("flash backend never wrote a page: %+v", bs)
			}
			// Ground truth check: archive answers are confirmed data.
			for _, e := range res.Answer.Entries {
				truth, err := n.Truth(1, e.T)
				if err != nil {
					t.Fatal(err)
				}
				diff := e.V - truth
				if diff < 0 {
					diff = -diff
				}
				if diff > 0.51 { // precision + float32 wire slack
					t.Fatalf("archive entry off truth by %v", diff)
				}
			}
		})
	}
}
