package core

// The query engine: sharded, asynchronous, pull-coalescing.
//
// A deployment is partitioned into shards — independent simulation
// domains, each owning a group of proxies, their motes, an event kernel,
// a radio medium, and a slice of the distributed index. One worker
// goroutine per shard serializes all access to the domain, so shards
// advance concurrently with no shared locks; the only cross-domain
// channels are the wired-replica bridge (radio.Bridge) and the engine's
// command queues.
//
// Queries enter through Submit/SubmitBatch: the engine routes each query
// to the shard owning its mote, the shard worker executes it against the
// domain's unified store, and — when the query needs a mote rendezvous —
// steps the domain's kernel until the answer resolves. Queries submitted
// while a rendezvous is outstanding are picked up between steps, which is
// what lets the proxy coalesce their pulls into the in-flight rendezvous.
// ExecuteWait is a thin synchronous wrapper over Submit.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"presto/internal/index"
	"presto/internal/mote"
	"presto/internal/proxy"
	"presto/internal/query"
	"presto/internal/radio"
	"presto/internal/simtime"
	"presto/internal/store"
)

// ErrClosed is returned by engine operations after Close.
var ErrClosed = errors.New("core: network closed")

// bridgeDrainQuantum bounds how much virtual time a shard advances
// between bridge drains, so replica mirrors lag the wireless domains by
// at most this much of virtual time during long runs (well under one
// sample interval at the default 1-minute sampling).
const bridgeDrainQuantum = 10 * time.Second

// pendingQuery tracks one submitted query until its result is delivered.
// Exactly one of ch/fn is set: the channel is buffered so an abandoned
// Submit cannot wedge a worker; the callback form (scatter-gather
// partials) runs on the worker with ok=false when the query can never
// complete.
type pendingQuery struct {
	ch chan query.Result
	fn func(query.Result, bool)
}

// fail reports the query as never completed.
func (pq *pendingQuery) fail() {
	if pq.fn != nil {
		pq.fn(query.Result{}, false)
		return
	}
	close(pq.ch)
}

// shardCmd is one unit of work for a shard worker. fn runs on the
// worker; done, when non-nil, is closed as soon as fn returns (queries fn
// started settle afterwards).
type shardCmd struct {
	fn   func(*shard)
	done chan struct{}
}

// shard is one independent simulation domain and its worker state.
type shard struct {
	domain int
	// slot is this shard's current index in Network.shards. Unlike the
	// global domain index it is process-local and changes when domains
	// are adopted or dropped (elastic re-hosting renumbers slots), so
	// per-shard result arrays index by slot, never by domain arithmetic.
	slot    int
	sim     *simtime.Simulator
	medium  *radio.Medium
	ix      *index.Index
	st      *store.Store
	proxies []*proxy.Proxy // local, in global build order
	motes   []*mote.Mote   // local, in global build order

	// moteProxy maps each local mote to its managing proxy.
	moteProxy map[radio.NodeID]*proxy.Proxy

	bridge *radio.Bridge // nil in single-domain deployments
	wired  *proxy.Proxy  // the wired replica proxy (shard 0 only)

	cmds chan shardCmd
	quit chan struct{}
	// closeMu gates enqueue against Close: senders hold it shared while
	// checking closed and sending, Close holds it exclusively while
	// flipping the flag, so no command can slip in after the worker's
	// final drain.
	closeMu sync.RWMutex
	closed  bool

	// Worker-local:
	pending map[*pendingQuery]struct{}

	retrainFailures atomic.Uint64
}

// loop is the shard worker: it serializes every touch of the domain and
// settles submitted queries by stepping the domain's kernel.
func (s *shard) loop() {
	for {
		select {
		case <-s.quit:
			// Run any stragglers accepted before Close flipped the gate,
			// then fail whatever queries remain outstanding.
			s.drainCmds()
			s.failPending()
			return
		case c := <-s.cmds:
			s.deliverBridge()
			s.exec(c)
			s.settle()
		}
	}
}

// deliverBridge drains the inter-domain inbox and, when the domain has
// no queries settling (which would step the kernel anyway), runs the
// kernel past the wired latency so the deliveries apply before the next
// command executes — replica mirrors stay fresh even in query-only
// workloads that never call Run.
func (s *shard) deliverBridge() {
	if s.bridge == nil {
		return
	}
	if s.bridge.Drain(radio.DomainID(s.domain)) > 0 && len(s.pending) == 0 {
		s.sim.RunFor(s.bridge.Latency())
	}
}

func (s *shard) exec(c shardCmd) {
	c.fn(s)
	if c.done != nil {
		close(c.done)
	}
}

// drainCmds executes every queued command without blocking, so queries
// submitted while the worker is settling join the current rendezvous
// window (pull coalescing across concurrent submitters).
func (s *shard) drainCmds() {
	for {
		select {
		case c := <-s.cmds:
			s.exec(c)
		default:
			return
		}
	}
}

// settle advances the domain until every submitted query has resolved.
// Pull timeouts guarantee progress; if the kernel still runs dry with
// queries outstanding, they are failed rather than wedged.
func (s *shard) settle() {
	for {
		if s.bridge != nil {
			s.bridge.Drain(radio.DomainID(s.domain))
		}
		s.drainCmds()
		if len(s.pending) == 0 {
			return
		}
		if !s.sim.Step() {
			s.failPending()
			return
		}
	}
}

// failPending closes every outstanding result channel (receivers see a
// closed channel and report the query as never completed) and fires
// callback-style queries with ok=false.
func (s *shard) failPending() {
	for pq := range s.pending {
		pq.fail()
	}
	clear(s.pending)
}

// submit executes one query on the worker, registering it for settling.
func (s *shard) submit(q query.Query, pq *pendingQuery) {
	s.pending[pq] = struct{}{}
	err := s.st.Execute(q, func(r query.Result) {
		delete(s.pending, pq)
		if pq.fn != nil {
			pq.fn(r, true)
			return
		}
		pq.ch <- r
	})
	if err != nil {
		delete(s.pending, pq)
		pq.fail()
	}
}

// submitCB is submit for worker-side consumers: fn runs on the worker
// exactly once — with the result, or with ok=false when the query can
// never complete (wedged domain or shutdown). Scatter-gather partials
// use it to fold per-mote answers into a domain-local aggregate without
// a channel per mote.
func (s *shard) submitCB(q query.Query, fn func(query.Result, bool)) {
	s.submit(q, &pendingQuery{fn: fn})
}

// advance runs the domain forward by d. Multi-domain deployments chunk
// the run at bounded virtual-time intervals, draining the bridge and
// the command queue between chunks: replica traffic from other domains
// keeps flowing during long runs, and scatter-gather commands from
// other domains' continuous rounds execute near the virtual time they
// fired instead of queueing behind the whole advance. Commands drained
// here run between kernel chunks, when the kernel is not stepping, so
// they may safely submit queries — any they leave pending settle during
// the remaining chunks or in the worker's settle loop after the advance
// command returns. Single-domain deployments run the span in one
// unchunked RunUntil — there is no cross-domain traffic to interleave
// (a continuous spec's rounds fire as kernel events on this very
// domain), and chunking costs ~30% on long simulations.
func (s *shard) advance(d time.Duration) {
	s.advanceTo(s.sim.Now() + simtime.Time(d))
}

// advanceTo runs the domain forward to absolute virtual time target
// (no-op for a domain already at or past it — e.g. one that ran ahead
// settling queries). Cluster advance leases use the absolute form so
// every domain in every process converges on the same clock regardless
// of where each one currently stands.
func (s *shard) advanceTo(target simtime.Time) {
	for {
		if s.bridge != nil {
			s.bridge.Drain(radio.DomainID(s.domain))
		}
		s.drainCmds()
		if s.sim.Now() >= target {
			return
		}
		next := s.sim.Now() + simtime.Time(bridgeDrainQuantum)
		if s.bridge == nil || next > target {
			next = target
		}
		s.sim.RunUntil(next)
		if s.sim.Now() >= target {
			return
		}
	}
}

// enqueue hands a command to the worker, reporting false after Close.
// Holding closeMu shared across the check-and-send means a true return
// guarantees the worker will run the command: Close cannot flip the gate
// mid-send, and the worker drains the queue before exiting.
func (s *shard) enqueue(c shardCmd) bool {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return false
	}
	s.cmds <- c
	return true
}

// isClosed reports whether the shard has been shut down. Close shuts
// down every shard, so any one shard answers for the whole engine.
func (s *shard) isClosed() bool {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	return s.closed
}

// shutdown flips the gate and wakes the worker for its final drain.
func (s *shard) shutdown() {
	s.closeMu.Lock()
	if !s.closed {
		s.closed = true
		close(s.quit)
	}
	s.closeMu.Unlock()
}

// call runs fn on the shard worker and waits for it to return. It
// reports false after Close.
func (s *shard) call(fn func(*shard)) bool {
	done := make(chan struct{})
	if !s.enqueue(shardCmd{fn: fn, done: done}) {
		return false
	}
	<-done
	return true
}

// ---------------------------------------------------------------------------
// Engine API on Network

// Shards reports how many concurrent simulation domains the deployment
// runs.
func (n *Network) Shards() int { return len(n.shards) }

// shardFor routes a mote to its owning shard.
func (n *Network) shardFor(m radio.NodeID) (*shard, error) {
	si, ok := n.moteShard[m]
	if !ok {
		return nil, fmt.Errorf("core: unknown mote %d", m)
	}
	return n.shards[si], nil
}

// Submit posts a query to the engine and returns a channel that yields
// the result when it completes. The channel is closed without a value if
// the query can never complete (wedged domain or engine shutdown). NOW
// queries for motes in other domains are offered to the wired replica
// first when one exists; everything the replica cannot answer within
// precision is forwarded to the owning shard.
//
// A query carrying a freshness bound (MaxStaleness > 0) bypasses the
// replica entirely when the replica's snapshot cannot meet it: the
// replica's newest confirmed observation for the mote is compared against
// the owning domain's clock (lock-free snapshot), and any undrained
// bridge traffic for the replica's domain also marks it stale. Bypassed
// queries settle in the owning domain, where the managing proxy enforces
// the bound end-to-end — paying a mote rendezvous if its own snapshot is
// too old. This replaces the fixed bridge-drain-quantum guarantee with a
// per-query bound.
//
// PAST and AGG queries always settle in the owning domain, where the
// bound is enforced when the window tail overlaps "now" (T1 plus the
// bound reaches the domain clock): the domain store refuses to serve the
// span from an archive staler than the bound (RoutingStats.ArchiveStale)
// and the managing proxy pulls the span rather than extrapolate the tail
// from a stale model snapshot (proxy.QueryRangeBounded). Purely
// historical windows are unaffected.
func (n *Network) Submit(q query.Query) (<-chan query.Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	target, err := n.shardFor(q.Mote)
	if err != nil {
		return nil, err
	}
	n.queriesSubmitted.Add(1)
	pq := &pendingQuery{ch: make(chan query.Result, 1)}
	if n.replicaFirst && target.domain != 0 && q.Type == query.Now {
		s0 := n.shards[0]
		forward := func() {
			if !target.enqueue(shardCmd{fn: func(ts *shard) { ts.submit(q, pq) }}) {
				close(pq.ch) // owning shard shut down mid-forward
			}
		}
		ok := s0.enqueue(shardCmd{fn: func(s *shard) {
			// The owning domain's clock, read lock-free at check time (not
			// at Submit — the owner may advance while this query queues):
			// the replica's mirrored data carries owning-domain timestamps,
			// so this is the reference the staleness check needs.
			ownerNow := target.sim.NowSnapshot()
			if q.MaxStaleness > 0 &&
				(s.bridge.PendingFor(0, q.Mote) > 0 || !s.wired.FreshWithin(q.Mote, ownerNow, q.MaxStaleness)) {
				n.replicaBypassed.Add(1)
				forward()
				return
			}
			if a, ok := s.wired.QueryLocal(q.Mote, s.sim.Now(), q.Precision); ok {
				n.replicaServed.Add(1)
				pq.ch <- query.Result{Query: q, Answer: a}
				return
			}
			forward()
		}})
		if !ok {
			return nil, ErrClosed
		}
		return pq.ch, nil
	}
	if !target.enqueue(shardCmd{fn: func(s *shard) { s.submit(q, pq) }}) {
		return nil, ErrClosed
	}
	return pq.ch, nil
}

// SubmitBatch posts a set of queries at once, grouped so that each shard
// issues its queries back-to-back before settling — concurrent cold
// queries on the same mote deterministically share one archive
// rendezvous. Result channels are returned in input order.
func (n *Network) SubmitBatch(qs []query.Query) ([]<-chan query.Result, error) {
	type item struct {
		q  query.Query
		pq *pendingQuery
	}
	chans := make([]<-chan query.Result, len(qs))
	groups := make(map[*shard][]item)
	for i, q := range qs {
		if err := q.Validate(); err != nil {
			return nil, fmt.Errorf("core: query %d: %w", i, err)
		}
		target, err := n.shardFor(q.Mote)
		if err != nil {
			return nil, fmt.Errorf("core: query %d: %w", i, err)
		}
		pq := &pendingQuery{ch: make(chan query.Result, 1)}
		chans[i] = pq.ch
		groups[target] = append(groups[target], item{q: q, pq: pq})
	}
	n.queriesSubmitted.Add(uint64(len(qs)))
	for target, items := range groups {
		items := items
		if !target.enqueue(shardCmd{fn: func(s *shard) {
			for _, it := range items {
				s.submit(it.q, it.pq)
			}
		}}) {
			return nil, ErrClosed
		}
	}
	return chans, nil
}

// ExecuteWait posts a query and blocks until it completes — the
// synchronous convenience wrapper over Submit that legacy examples and
// experiments use.
//
// Deprecated: pose a query.Spec through Client.QueryOne instead; a Spec
// targeting one mote behaves identically and the same facade scales to
// mote sets and continuous queries.
func (n *Network) ExecuteWait(q query.Query) (query.Result, error) {
	ch, err := n.Submit(q)
	if err != nil {
		return query.Result{}, err
	}
	r, ok := <-ch
	if !ok {
		return query.Result{}, errors.New("core: query never completed (no pending events)")
	}
	return r, nil
}

// Execute posts a query against the unified store without settling: the
// callback fires on the owning shard's worker, possibly during a later
// Run if the query needs a mote round trip.
//
// Deprecated: the bare callback API predates the engine; use
// Client.Query with a query.Spec (or Submit when channel semantics are
// needed).
func (n *Network) Execute(q query.Query, cb func(query.Result)) error {
	target, err := n.shardFor(q.Mote)
	if err != nil {
		return err
	}
	var execErr error
	if !target.call(func(s *shard) { execErr = s.st.Execute(q, cb) }) {
		return ErrClosed
	}
	return execErr
}

// Run advances every shard's virtual time by d, concurrently.
func (n *Network) Run(d time.Duration) {
	n.eachShard(func(s *shard) { s.advance(d) })
}

// RunUntilTime advances every shard to absolute virtual time t; domains
// already at or past t (having run ahead settling queries) are left
// where they are. Cluster advance leases are issued in this form — every
// site converges on the coordinator's lease target, which is what keeps
// the distributed clocks within one lease quantum of each other.
func (n *Network) RunUntilTime(t simtime.Time) {
	n.eachShard(func(s *shard) { s.advanceTo(t) })
}

// eachShard runs fn on every shard's worker in parallel and waits for
// all of them.
func (n *Network) eachShard(fn func(*shard)) {
	dones := make([]chan struct{}, 0, len(n.shards))
	for _, s := range n.shards {
		done := make(chan struct{})
		if s.enqueue(shardCmd{fn: fn, done: done}) {
			dones = append(dones, done)
		}
	}
	for _, done := range dones {
		<-done
	}
}

// Now returns the current virtual time: the least-advanced shard clock,
// read from atomic snapshots without taking any lock.
func (n *Network) Now() simtime.Time {
	now := n.shards[0].sim.NowSnapshot()
	for _, s := range n.shards[1:] {
		if t := s.sim.NowSnapshot(); t < now {
			now = t
		}
	}
	return now
}

// Close shuts down the shard workers. Outstanding queries fail (their
// result channels close); subsequent engine calls return ErrClosed. Safe
// to call multiple times; networks abandoned without Close are reaped by
// a finalizer.
func (n *Network) Close() {
	n.closeOnce.Do(func() {
		for _, s := range n.shards {
			s.shutdown()
		}
	})
}

// EngineStats reports engine-level counters: queries submitted, queries
// served directly by the wired replica, and wired-replica bridge traffic
// (messages sent / delivered across domains).
func (n *Network) EngineStats() (submitted, replicaServed, bridgeSent, bridgeDelivered uint64) {
	if n.bridge != nil {
		bridgeSent, bridgeDelivered = n.bridge.Stats()
	}
	return n.queriesSubmitted.Load(), n.replicaServed.Load(), bridgeSent, bridgeDelivered
}

// ReplicaBypassed reports how many NOW queries skipped the wired replica
// because a per-query freshness bound judged its snapshot too stale.
func (n *Network) ReplicaBypassed() uint64 { return n.replicaBypassed.Load() }
