// Package index implements PRESTO's distributed index tier: the component
// that "constructs a unified view of caches across geographically
// distributed sensor proxies" (Section 1) using an order-preserving
// structure (Skip Graphs, Section 5).
//
// The index answers two questions:
//
//  1. ownership — which proxy manages a given mote (query routing for the
//     unified store), and
//  2. temporal order — a single time-ordered stream of detections
//     (semantic events) across every proxy, the view a traffic-monitoring
//     application needs to reconstruct vehicle trajectories across
//     sensors owned by different proxies.
//
// Detections are published into a skip graph keyed by timestamp
// (nanosecond resolution; same-instant detections are disambiguated by
// linear probing into adjacent unused nanoseconds, which cannot disturb
// ordering at sensor timescales). Hop counts accumulate in the underlying
// graph, giving E9 its inter-proxy message counts.
package index

import (
	"errors"
	"fmt"

	"presto/internal/radio"
	"presto/internal/simtime"
	"presto/internal/skipgraph"
)

// ProxyID identifies a proxy in the index tier.
type ProxyID int

// Detection is a semantic event published by a proxy (e.g. "vehicle of
// type 3 seen at sensor 7"). Per Section 3, proxies cache event-based
// views, not raw data; the index orders those events globally.
type Detection struct {
	T     simtime.Time
	Mote  radio.NodeID
	Proxy ProxyID
	Kind  string
	Value float64
}

// ErrNoProxy is returned when routing an unregistered mote.
var ErrNoProxy = errors.New("index: mote not registered with any proxy")

// Index is the distributed index spanning all proxies.
type Index struct {
	g       *skipgraph.Graph
	proxyOf map[radio.NodeID]ProxyID
	motesBy map[ProxyID][]radio.NodeID
	// replicaOf maps a wireless proxy to the wired proxy that replicates
	// its cache (Section 5's low-latency replication).
	replicaOf map[ProxyID]ProxyID
	wired     map[ProxyID]bool
	published uint64
}

// New creates an empty index; seed drives skip-graph membership vectors.
func New(seed int64) *Index {
	return &Index{
		g:         skipgraph.New(seed),
		proxyOf:   make(map[radio.NodeID]ProxyID),
		motesBy:   make(map[ProxyID][]radio.NodeID),
		replicaOf: make(map[ProxyID]ProxyID),
		wired:     make(map[ProxyID]bool),
	}
}

// RegisterProxy declares a proxy and whether it is wired (mesh/802.11
// proxies are not).
func (ix *Index) RegisterProxy(p ProxyID, wired bool) {
	ix.wired[p] = wired
	if _, ok := ix.motesBy[p]; !ok {
		ix.motesBy[p] = nil
	}
}

// Wired reports whether a proxy was registered as wired.
func (ix *Index) Wired(p ProxyID) bool { return ix.wired[p] }

// RegisterMote assigns a mote to its managing proxy.
func (ix *Index) RegisterMote(m radio.NodeID, p ProxyID) {
	if old, ok := ix.proxyOf[m]; ok {
		// Re-assignment: remove from the old proxy's list.
		motes := ix.motesBy[old]
		for i, id := range motes {
			if id == m {
				ix.motesBy[old] = append(motes[:i], motes[i+1:]...)
				break
			}
		}
	}
	ix.proxyOf[m] = p
	ix.motesBy[p] = append(ix.motesBy[p], m)
}

// ProxyFor routes a mote to its managing proxy.
func (ix *Index) ProxyFor(m radio.NodeID) (ProxyID, error) {
	p, ok := ix.proxyOf[m]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoProxy, m)
	}
	return p, nil
}

// MotesOf lists the motes a proxy manages.
func (ix *Index) MotesOf(p ProxyID) []radio.NodeID {
	return append([]radio.NodeID(nil), ix.motesBy[p]...)
}

// Proxies lists registered proxies.
func (ix *Index) Proxies() []ProxyID {
	out := make([]ProxyID, 0, len(ix.wired))
	for p := range ix.wired {
		out = append(out, p)
	}
	return out
}

// SetReplica declares that wired proxy w replicates wireless proxy p's
// cache. Returns an error if w is not wired.
func (ix *Index) SetReplica(p, w ProxyID) error {
	if !ix.wired[w] {
		return fmt.Errorf("index: replica target %d is not a wired proxy", w)
	}
	ix.replicaOf[p] = w
	return nil
}

// ReplicaFor returns the wired replica of a proxy, if any.
func (ix *Index) ReplicaFor(p ProxyID) (ProxyID, bool) {
	w, ok := ix.replicaOf[p]
	return w, ok
}

// PublishDetection inserts a detection into the global temporal index.
// Same-nanosecond detections are disambiguated by probing forward.
func (ix *Index) PublishDetection(d Detection) error {
	key := uint64(d.T)
	for probes := 0; probes < 1<<16; probes++ {
		err := ix.g.Insert(key, d)
		if err == nil {
			ix.published++
			return nil
		}
		if !errors.Is(err, skipgraph.ErrDuplicateKey) {
			return err
		}
		key++
	}
	return errors.New("index: could not disambiguate detection timestamp")
}

// ScanDetections returns detections in [t0, t1] in global time order,
// regardless of which proxy published them.
func (ix *Index) ScanDetections(t0, t1 simtime.Time) []Detection {
	kvs := ix.g.RangeScan(uint64(t0), uint64(t1))
	out := make([]Detection, 0, len(kvs))
	for _, kv := range kvs {
		if d, ok := kv.Value.(Detection); ok {
			out = append(out, d)
		}
	}
	return out
}

// LookupDetection finds the detection at (or probed just after) time t.
func (ix *Index) LookupDetection(t simtime.Time) (Detection, bool) {
	v, ok := ix.g.Search(uint64(t))
	if !ok {
		return Detection{}, false
	}
	d, ok := v.(Detection)
	return d, ok
}

// Hops returns cumulative inter-proxy hops spent on index operations.
func (ix *Index) Hops() uint64 { return ix.g.Hops() }

// ResetHops zeroes the hop counter.
func (ix *Index) ResetHops() { ix.g.ResetHops() }

// Published returns the number of detections in the index.
func (ix *Index) Published() uint64 { return ix.published }
