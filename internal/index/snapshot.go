package index

import (
	"fmt"
	"io"

	"presto/internal/radio"
	"presto/internal/simtime"
	"presto/internal/snap"
)

// Snapshot externalizes the index's detection state: the published
// counter, the cumulative hop count, the skip graph's generator state,
// and every (key, Detection) pair in key order. The topology maps
// (proxy/mote registration, replica wiring) are NOT serialized — they
// derive from the deployment config and the restoring side rebuilds them
// identically. The pair walk is hop-free, so capturing a snapshot cannot
// perturb a domain that keeps running.
func (ix *Index) Snapshot(w io.Writer) error {
	var e snap.Enc
	e.U64(ix.published)
	e.U64(ix.g.Hops())
	st := ix.g.RNGState()
	for _, v := range st {
		e.U64(v)
	}
	e.Uvarint(uint64(ix.g.Len()))
	var walkErr error
	ix.g.Walk(func(key uint64, value interface{}) {
		d, ok := value.(Detection)
		if !ok {
			walkErr = fmt.Errorf("index: non-detection value at key %d", key)
			return
		}
		e.U64(key)
		e.I64(int64(d.T))
		e.I64(int64(d.Mote))
		e.I64(int64(d.Proxy))
		e.String(d.Kind)
		e.F64(d.Value)
	})
	if walkErr != nil {
		return walkErr
	}
	return snap.WriteBlock(w, snap.TagIndex, e.Data())
}

// Restore reinstalls detection state captured by Snapshot onto a freshly
// built index (topology already registered by the deployment build).
// Pairs are re-inserted in key order — re-insertion draws fresh
// membership vectors and accrues hops, so the snapshotted generator
// state and hop counter are reinstalled afterwards: future inserts and
// searches behave exactly as the original index's would.
func (ix *Index) Restore(r io.Reader) error {
	body, err := snap.ReadBlock(r, snap.TagIndex)
	if err != nil {
		return err
	}
	d := snap.NewDec(body)
	published := d.U64()
	hops := d.U64()
	var st [4]uint64
	for i := range st {
		st[i] = d.U64()
	}
	n := d.Uvarint()
	type pair struct {
		key uint64
		det Detection
	}
	pairs := make([]pair, 0, n)
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		var p pair
		p.key = d.U64()
		p.det.T = simtime.Time(d.I64())
		p.det.Mote = radio.NodeID(d.I64())
		p.det.Proxy = ProxyID(d.I64())
		p.det.Kind = d.String()
		p.det.Value = d.F64()
		pairs = append(pairs, p)
	}
	if err := d.Done(); err != nil {
		return fmt.Errorf("index: %w", err)
	}
	for _, p := range pairs {
		if err := ix.g.Insert(p.key, p.det); err != nil {
			return fmt.Errorf("index: restore key %d: %w", p.key, err)
		}
	}
	ix.published = published
	ix.g.RestoreHops(hops)
	ix.g.SetRNGState(st)
	return nil
}
