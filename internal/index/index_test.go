package index

import (
	"sort"
	"testing"

	"presto/internal/simtime"
)

func TestMoteRouting(t *testing.T) {
	ix := New(1)
	ix.RegisterProxy(1, true)
	ix.RegisterProxy(2, false)
	ix.RegisterMote(10, 1)
	ix.RegisterMote(11, 2)
	p, err := ix.ProxyFor(10)
	if err != nil || p != 1 {
		t.Fatalf("ProxyFor(10)=%v,%v", p, err)
	}
	if _, err := ix.ProxyFor(99); err == nil {
		t.Fatal("unknown mote routed")
	}
	motes := ix.MotesOf(1)
	if len(motes) != 1 || motes[0] != 10 {
		t.Fatalf("MotesOf=%v", motes)
	}
	if len(ix.Proxies()) != 2 {
		t.Fatal("Proxies wrong")
	}
}

func TestMoteReassignment(t *testing.T) {
	ix := New(1)
	ix.RegisterProxy(1, true)
	ix.RegisterProxy(2, true)
	ix.RegisterMote(10, 1)
	ix.RegisterMote(10, 2)
	p, _ := ix.ProxyFor(10)
	if p != 2 {
		t.Fatalf("reassigned mote at %v", p)
	}
	if len(ix.MotesOf(1)) != 0 {
		t.Fatal("old proxy still lists mote")
	}
	if len(ix.MotesOf(2)) != 1 {
		t.Fatal("new proxy missing mote")
	}
}

func TestWiredReplica(t *testing.T) {
	ix := New(1)
	ix.RegisterProxy(1, true)
	ix.RegisterProxy(2, false)
	if err := ix.SetReplica(2, 1); err != nil {
		t.Fatal(err)
	}
	w, ok := ix.ReplicaFor(2)
	if !ok || w != 1 {
		t.Fatalf("ReplicaFor=%v,%v", w, ok)
	}
	if _, ok := ix.ReplicaFor(1); ok {
		t.Fatal("unexpected replica")
	}
	// Replica target must be wired.
	if err := ix.SetReplica(1, 2); err == nil {
		t.Fatal("wireless replica target accepted")
	}
	if !ix.Wired(1) || ix.Wired(2) {
		t.Fatal("Wired flags wrong")
	}
}

func TestDetectionOrdering(t *testing.T) {
	ix := New(1)
	// Publish out of order from different proxies.
	times := []simtime.Time{5 * simtime.Minute, simtime.Minute, 3 * simtime.Minute, 4 * simtime.Minute, 2 * simtime.Minute}
	for i, tt := range times {
		err := ix.PublishDetection(Detection{T: tt, Mote: 1, Proxy: ProxyID(i % 2), Kind: "vehicle"})
		if err != nil {
			t.Fatal(err)
		}
	}
	got := ix.ScanDetections(0, simtime.Hour)
	if len(got) != 5 {
		t.Fatalf("scanned %d", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].T < got[j].T }) {
		t.Fatal("detections not time-ordered")
	}
	if ix.Published() != 5 {
		t.Fatalf("published=%d", ix.Published())
	}
}

func TestDetectionSameInstant(t *testing.T) {
	ix := New(1)
	for i := 0; i < 10; i++ {
		if err := ix.PublishDetection(Detection{T: simtime.Minute, Mote: 1, Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := ix.ScanDetections(simtime.Minute, simtime.Minute+simtime.Second)
	if len(got) != 10 {
		t.Fatalf("same-instant detections lost: %d", len(got))
	}
}

func TestScanWindow(t *testing.T) {
	ix := New(1)
	for i := 0; i < 10; i++ {
		ix.PublishDetection(Detection{T: simtime.Time(i) * simtime.Minute, Mote: 1})
	}
	got := ix.ScanDetections(2*simtime.Minute, 5*simtime.Minute)
	if len(got) != 4 {
		t.Fatalf("window scan %d, want 4", len(got))
	}
}

func TestLookup(t *testing.T) {
	ix := New(1)
	ix.PublishDetection(Detection{T: simtime.Minute, Kind: "intruder"})
	d, ok := ix.LookupDetection(simtime.Minute)
	if !ok || d.Kind != "intruder" {
		t.Fatalf("lookup %+v %v", d, ok)
	}
	if _, ok := ix.LookupDetection(simtime.Hour); ok {
		t.Fatal("phantom detection")
	}
}

func TestHopsAccrue(t *testing.T) {
	ix := New(1)
	for i := 0; i < 200; i++ {
		ix.PublishDetection(Detection{T: simtime.Time(i) * simtime.Second})
	}
	ix.ResetHops()
	ix.ScanDetections(0, 200*simtime.Second)
	if ix.Hops() == 0 {
		t.Fatal("scan accrued no hops")
	}
}
