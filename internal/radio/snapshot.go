package radio

import (
	"fmt"
	"io"
	"sort"
	"time"

	"presto/internal/simtime"
	"presto/internal/snap"
)

// Snapshot externalizes the medium's mutable state: the medium-wide
// counters, every attached endpoint's tunables and counters (sorted by
// node id for deterministic bytes), and the in-air flights in insertion
// order. Config and energy params are construction inputs, not state —
// the restoring side rebuilds the medium from the same deployment
// config.
func (m *Medium) Snapshot(w io.Writer) error {
	var e snap.Enc
	e.U64(m.sent)
	e.U64(m.delivered)
	e.U64(m.lost)
	e.U64(m.retried)

	ids := make([]NodeID, 0, len(m.nodes))
	for id := range m.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	e.Uvarint(uint64(len(ids)))
	for _, id := range ids {
		ep := m.nodes[id]
		e.I64(int64(id))
		e.I64(int64(ep.lplInterval))
		e.I64(int64(ep.listenFrom))
		e.U64(ep.txMsgs)
		e.U64(ep.rxMsgs)
		e.U64(ep.txBytes)
		e.U64(ep.rxBytes)
	}

	e.Uvarint(uint64(len(m.flights)))
	for _, fl := range m.flights {
		e.I64(int64(fl.deliverAt))
		encodePacket(&e, fl.pkt)
	}
	return snap.WriteBlock(w, snap.TagMedium, e.Data())
}

// Restore reinstalls medium state captured by Snapshot onto a freshly
// built medium whose endpoints are already attached (the deployment
// build wires handlers; handlers are closures and never serialized).
// Endpoints attached locally but absent from the snapshot were detached
// at capture time and are detached here too. Flights are re-scheduled at
// their original absolute delivery instants — no randomness is consumed
// (every draw happened at the original Send).
func (m *Medium) Restore(r io.Reader) error {
	body, err := snap.ReadBlock(r, snap.TagMedium)
	if err != nil {
		return err
	}
	d := snap.NewDec(body)
	m.sent = d.U64()
	m.delivered = d.U64()
	m.lost = d.U64()
	m.retried = d.U64()

	present := make(map[NodeID]bool)
	nNodes := d.Uvarint()
	for i := uint64(0); i < nNodes && d.Err() == nil; i++ {
		id := NodeID(d.I64())
		ep, ok := m.nodes[id]
		if !ok {
			return fmt.Errorf("radio: restore: endpoint %d in snapshot but not attached", id)
		}
		present[id] = true
		ep.lplInterval = time.Duration(d.I64())
		ep.listenFrom = simtime.Time(d.I64())
		ep.txMsgs = d.U64()
		ep.rxMsgs = d.U64()
		ep.txBytes = d.U64()
		ep.rxBytes = d.U64()
	}

	m.flights = nil
	nFlights := d.Uvarint()
	flights := make([]*flight, 0, nFlights)
	for i := uint64(0); i < nFlights && d.Err() == nil; i++ {
		fl := &flight{deliverAt: simtime.Time(d.I64())}
		fl.pkt = decodePacket(d)
		flights = append(flights, fl)
	}
	if err := d.Done(); err != nil {
		return fmt.Errorf("radio: medium: %w", err)
	}

	// Endpoints the snapshot does not mention were detached when it was
	// taken. (Detach accrues idle-listen energy against the fresh meter;
	// harmless — the owning layer's restore overwrites the meter after.)
	var gone []*Endpoint
	for id, ep := range m.nodes {
		if !present[id] {
			gone = append(gone, ep)
		}
	}
	for _, ep := range gone {
		ep.Detach()
	}

	for _, fl := range flights {
		m.launch(fl)
	}
	return nil
}

func encodePacket(e *snap.Enc, p Packet) {
	e.I64(int64(p.Src))
	e.I64(int64(p.Dst))
	e.Uvarint(uint64(p.Kind))
	e.Bytes(p.Payload)
	e.I64(int64(p.SentAt))
}

func decodePacket(d *snap.Dec) Packet {
	var p Packet
	p.Src = NodeID(d.I64())
	p.Dst = NodeID(d.I64())
	p.Kind = Kind(d.Uvarint())
	if b := d.Bytes(); len(b) > 0 {
		p.Payload = append([]byte(nil), b...)
	}
	p.SentAt = simtime.Time(d.I64())
	return p
}

// SnapshotDomain externalizes one domain's receive-side bridge state:
// the undrained inbox and the drained-but-undelivered flights. The
// bridge-wide sent/delivered counters are process-level stats shared by
// every domain and are not part of any one domain's state. Only the
// goroutine driving the domain's simulator may call this (the same rule
// as Drain), since it reads the flight list that goroutine owns.
func (b *Bridge) SnapshotDomain(d DomainID, w io.Writer) error {
	b.mu.Lock()
	dom, ok := b.domains[d]
	var inbox []BridgeMsg
	if ok {
		inbox = append(inbox, dom.inbox...)
	}
	b.mu.Unlock()
	if !ok {
		return fmt.Errorf("radio: bridge domain %d not attached", d)
	}

	var e snap.Enc
	e.Uvarint(uint64(len(inbox)))
	for _, msg := range inbox {
		encodeBridgeMsg(&e, msg)
	}
	e.Uvarint(uint64(len(dom.flights)))
	for _, fl := range dom.flights {
		e.I64(int64(fl.deliverAt))
		encodeBridgeMsg(&e, fl.msg)
	}
	return snap.WriteBlock(w, snap.TagBridge, e.Data())
}

// RestoreDomain reinstalls a domain's bridge state captured by
// SnapshotDomain. The domain must already be attached (the deployment
// build wires its handler). Flights are re-scheduled at their original
// absolute delivery instants on the domain's restored kernel.
func (b *Bridge) RestoreDomain(d DomainID, r io.Reader) error {
	body, err := snap.ReadBlock(r, snap.TagBridge)
	if err != nil {
		return err
	}
	b.mu.Lock()
	dom, ok := b.domains[d]
	b.mu.Unlock()
	if !ok {
		return fmt.Errorf("radio: restore: bridge domain %d not attached", d)
	}

	dec := snap.NewDec(body)
	var inbox []BridgeMsg
	nInbox := dec.Uvarint()
	for i := uint64(0); i < nInbox && dec.Err() == nil; i++ {
		inbox = append(inbox, decodeBridgeMsg(dec))
	}
	var flights []*bridgeFlight
	nFlights := dec.Uvarint()
	for i := uint64(0); i < nFlights && dec.Err() == nil; i++ {
		fl := &bridgeFlight{deliverAt: simtime.Time(dec.I64())}
		fl.msg = decodeBridgeMsg(dec)
		flights = append(flights, fl)
	}
	if err := dec.Done(); err != nil {
		return fmt.Errorf("radio: bridge: %w", err)
	}

	b.mu.Lock()
	dom.inbox = inbox
	b.mu.Unlock()
	dom.flights = nil
	for _, fl := range flights {
		dom.launch(b, fl)
	}
	return nil
}

func encodeBridgeMsg(e *snap.Enc, m BridgeMsg) {
	e.I64(int64(m.Src))
	e.I64(int64(m.Dst))
	e.I64(int64(m.Mote))
	e.Uvarint(uint64(m.Kind))
	e.Bytes(m.Payload)
}

func decodeBridgeMsg(d *snap.Dec) BridgeMsg {
	var m BridgeMsg
	m.Src = DomainID(d.I64())
	m.Dst = DomainID(d.I64())
	m.Mote = NodeID(d.I64())
	m.Kind = Kind(d.Uvarint())
	if b := d.Bytes(); len(b) > 0 {
		m.Payload = append([]byte(nil), b...)
	}
	return m
}
