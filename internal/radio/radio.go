// Package radio simulates the lossy, duty-cycled wireless link between
// PRESTO motes and their proxy.
//
// The MAC is B-MAC-style low-power listening (LPL): each duty-cycled
// endpoint wakes every CheckInterval to probe the channel; a sender must
// front every frame with a preamble long enough to cover the receiver's
// check interval. This yields the two energy terms the paper's
// query–sensor matching manipulates: per-packet preamble cost grows with
// the receiver's LPL interval, while idle-listening cost shrinks with it.
// Tethered proxies listen continuously (CheckInterval 0) so mote→proxy
// sends pay no preamble, while proxy→mote sends pay the mote's preamble —
// matching real deployments.
//
// Delivery is unicast with per-link loss probability, bounded random
// jitter, ACKs and bounded retransmission. All randomness comes from the
// simulator's seeded RNG, so runs are reproducible.
package radio

import (
	"errors"
	"fmt"
	"time"

	"presto/internal/energy"
	"presto/internal/simtime"
)

// NodeID identifies an endpoint on a medium.
type NodeID int

// Kind is an application-level message type tag carried in the header.
type Kind uint8

// Packet is one application message (the medium fragments it into frames
// internally for energy accounting; the handler sees whole messages).
type Packet struct {
	Src, Dst NodeID
	Kind     Kind
	Payload  []byte
	SentAt   simtime.Time // when Send was called
}

// Handler consumes delivered packets.
type Handler func(Packet)

// Errors.
var (
	ErrDuplicateNode = errors.New("radio: node id already attached")
	ErrUnknownNode   = errors.New("radio: destination not attached")
	ErrDetached      = errors.New("radio: endpoint is detached")
)

// Config holds medium-wide link characteristics.
type Config struct {
	// LossProb is the per-transmission-attempt loss probability in [0,1).
	LossProb float64
	// PropDelay is the base one-way latency for a frame exchange.
	PropDelay time.Duration
	// JitterMax adds uniform random [0, JitterMax) to each delivery.
	JitterMax time.Duration
	// MaxRetries bounds retransmissions after a lost attempt.
	MaxRetries int
	// ByteTime is the serialization time per payload byte.
	ByteTime time.Duration
	// PreambleInterval is the network-wide B-MAC wakeup-preamble length:
	// every sender fronts each message with a preamble of this duration
	// regardless of the destination (classic B-MAC broadcasts the wakeup
	// tone). The effective preamble for a send is the maximum of this and
	// the destination's own check interval. Zero models an X-MAC-style
	// link where the preamble tracks only the receiver's interval.
	PreambleInterval time.Duration
}

// DefaultConfig matches a single-hop 802.15.4-class link: 2% loss, 5 ms
// propagation+processing, 250 kbps serialization.
func DefaultConfig() Config {
	return Config{
		LossProb:   0.02,
		PropDelay:  5 * time.Millisecond,
		JitterMax:  2 * time.Millisecond,
		MaxRetries: 3,
		ByteTime:   32 * time.Microsecond, // 250 kbps
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.LossProb < 0 || c.LossProb >= 1 {
		return fmt.Errorf("radio: LossProb %g outside [0,1)", c.LossProb)
	}
	if c.PropDelay < 0 || c.JitterMax < 0 || c.ByteTime < 0 || c.PreambleInterval < 0 {
		return errors.New("radio: negative delay")
	}
	if c.MaxRetries < 0 {
		return errors.New("radio: negative MaxRetries")
	}
	return nil
}

// Medium connects endpoints over simulated single-hop links.
type Medium struct {
	sim    *simtime.Simulator
	cfg    Config
	params energy.Params
	nodes  map[NodeID]*Endpoint

	// flights tracks undelivered messages in insertion order. Deliveries
	// are also kernel events, but closures cannot be serialized — this
	// list is what Snapshot records and Restore re-schedules.
	flights []*flight

	sent, delivered, lost, retried uint64
}

// flight is one in-air message awaiting delivery.
type flight struct {
	deliverAt simtime.Time
	pkt       Packet
}

// NewMedium creates a medium on the simulator.
func NewMedium(sim *simtime.Simulator, cfg Config, params energy.Params) (*Medium, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Medium{sim: sim, cfg: cfg, params: params, nodes: make(map[NodeID]*Endpoint)}, nil
}

// Stats reports medium-wide counters: application sends, deliveries,
// permanently lost messages, and retransmission attempts.
func (m *Medium) Stats() (sent, delivered, lost, retried uint64) {
	return m.sent, m.delivered, m.lost, m.retried
}

// Endpoint is one node's attachment to the medium.
type Endpoint struct {
	id      NodeID
	medium  *Medium
	meter   *energy.Meter
	handler Handler

	// lplInterval is the LPL channel-check interval. Zero means the radio
	// is always listening (tethered proxy).
	lplInterval time.Duration
	// listenFrom tracks the last time idle-listening energy was accrued.
	listenFrom simtime.Time
	detached   bool

	txMsgs, rxMsgs, txBytes, rxBytes uint64
}

// Attach adds a node. meter may be nil (no energy accounting, e.g. the
// tethered proxy whose energy is not a constraint).
func (m *Medium) Attach(id NodeID, meter *energy.Meter, lpl time.Duration, h Handler) (*Endpoint, error) {
	if _, ok := m.nodes[id]; ok {
		return nil, ErrDuplicateNode
	}
	if lpl < 0 {
		lpl = 0
	}
	ep := &Endpoint{
		id:          id,
		medium:      m,
		meter:       meter,
		handler:     h,
		lplInterval: lpl,
		listenFrom:  m.sim.Now(),
	}
	m.nodes[id] = ep
	return ep, nil
}

// Detach removes the endpoint from the medium (a dead mote). Pending
// deliveries to it are dropped.
func (e *Endpoint) Detach() {
	if !e.detached {
		e.AccrueListen()
		delete(e.medium.nodes, e.id)
		e.detached = true
	}
}

// ID returns the endpoint's node id.
func (e *Endpoint) ID() NodeID { return e.id }

// LPLInterval returns the current channel-check interval.
func (e *Endpoint) LPLInterval() time.Duration { return e.lplInterval }

// SetLPLInterval retunes the duty cycle (query–sensor matching adjusts
// this at runtime). Accrued listening up to now is charged at the old
// rate first.
func (e *Endpoint) SetLPLInterval(d time.Duration) {
	e.AccrueListen()
	if d < 0 {
		d = 0
	}
	e.lplInterval = d
}

// AccrueListen charges idle-listening energy from the last accrual point
// to now. It is called lazily (on sends, retunes and reads) so month-long
// simulations need no per-wakeup events; always-on endpoints (lpl=0) are
// charged continuous listen power.
func (e *Endpoint) AccrueListen() {
	now := e.medium.sim.Now()
	elapsed := time.Duration(now - e.listenFrom)
	e.listenFrom = now
	if elapsed <= 0 || e.meter == nil {
		return
	}
	e.meter.Add(energy.RadioListen, e.medium.params.ListenCost(elapsed, e.lplInterval))
}

// charge adds energy to the endpoint's meter if it has one.
func (e *Endpoint) charge(c energy.Category, j float64) {
	if e.meter != nil {
		e.meter.Add(c, j)
	}
}

// Stats reports per-endpoint counters.
func (e *Endpoint) Stats() (txMsgs, rxMsgs, txBytes, rxBytes uint64) {
	return e.txMsgs, e.rxMsgs, e.txBytes, e.rxBytes
}

// Send transmits an application message to dst. Energy is charged
// immediately to both ends (sender: preamble sized by the receiver's LPL
// interval + payload + ACK rx; receiver: payload rx + ACK tx). Loss is
// resolved per attempt; after MaxRetries failures the message is dropped
// and the sender has still paid for every attempt. Delivery, if any,
// happens after propagation + serialization + LPL rendezvous delay.
func (e *Endpoint) Send(dst NodeID, kind Kind, payload []byte) error {
	if e.detached {
		return ErrDetached
	}
	m := e.medium
	target, ok := m.nodes[dst]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, dst)
	}
	m.sent++
	e.txMsgs++
	e.txBytes += uint64(len(payload))

	// LPL rendezvous: the sender must keep the preamble up until the
	// receiver's next channel check — on average half the interval; we
	// draw uniformly for realism and charge the *sender* preamble TX
	// for the receiver's full check interval (B-MAC worst-case preamble,
	// the standard conservative model).
	var rendezvous time.Duration
	if target.lplInterval > 0 {
		rendezvous = time.Duration(m.sim.Rand().Int63n(int64(target.lplInterval) + 1))
	}

	// Effective preamble: the network-wide B-MAC tone or the receiver's
	// own check interval, whichever is longer.
	preamble := m.cfg.PreambleInterval
	if target.lplInterval > preamble {
		preamble = target.lplInterval
	}

	attempts := 0
	for {
		attempts++
		// Sender pays full cost per attempt.
		e.charge(energy.RadioTx, m.params.TxCost(len(payload), preamble))
		if m.cfg.LossProb == 0 || m.sim.Rand().Float64() >= m.cfg.LossProb {
			break // this attempt gets through
		}
		if attempts > m.cfg.MaxRetries {
			m.lost++
			return nil // dropped after retries; link-layer loss is silent
		}
		m.retried++
	}

	serialization := time.Duration(len(payload)+m.params.HeaderBytes) * m.cfg.ByteTime
	jitter := time.Duration(0)
	if m.cfg.JitterMax > 0 {
		jitter = time.Duration(m.sim.Rand().Int63n(int64(m.cfg.JitterMax)))
	}
	delay := m.cfg.PropDelay + rendezvous + serialization + jitter
	pkt := Packet{Src: e.id, Dst: dst, Kind: kind, Payload: append([]byte(nil), payload...), SentAt: m.sim.Now()}
	m.launch(&flight{deliverAt: m.sim.Now() + simtime.Time(delay), pkt: pkt})
	return nil
}

// launch registers an in-air message and schedules its delivery.
func (m *Medium) launch(fl *flight) {
	m.flights = append(m.flights, fl)
	m.sim.ScheduleAt(fl.deliverAt, func() { m.deliver(fl) })
}

// deliver lands one flight: it leaves the in-air list and is handed to
// the receiver, which may have detached or retuned while in flight.
func (m *Medium) deliver(fl *flight) {
	for i, f := range m.flights {
		if f == fl {
			m.flights = append(m.flights[:i], m.flights[i+1:]...)
			break
		}
	}
	cur, ok := m.nodes[fl.pkt.Dst]
	if !ok {
		m.lost++
		return
	}
	cur.charge(energy.RadioRx, m.params.RxCost(len(fl.pkt.Payload)))
	cur.rxMsgs++
	cur.rxBytes += uint64(len(fl.pkt.Payload))
	m.delivered++
	if cur.handler != nil {
		cur.handler(fl.pkt)
	}
}
