package radio

// Partitioned mode: a sharded deployment runs each proxy and its motes in
// an independent simulation domain (own event kernel, own Medium) so the
// domains can advance concurrently on separate goroutines. The wireless
// tier never crosses a domain — motes only talk to their own proxy — but
// the wired backbone between proxies does: Section 5's wired replicas
// receive a copy of every confirmed observation and model update from the
// wireless proxies they replicate. Bridge is that backbone.
//
// A Bridge is a thread-safe mailbox network between domains. Senders
// (running inside their own domain's event loop) enqueue wire-level
// messages from any goroutine; each receiving domain drains its inbox at
// safe points of its own worker loop, which schedules delivery onto that
// domain's kernel after the wired latency. Virtual clocks of different
// domains are only loosely aligned (they advance in parallel), so a
// bridged message is timestamped by the *receiving* domain — the same
// relaxation a real wired WAN imposes.

import (
	"sync"
	"sync/atomic"
	"time"

	"presto/internal/simtime"
)

// DomainID identifies one simulation domain on a bridge.
type DomainID int

// BridgeMsg is one wired inter-domain message. Kind and Payload are
// wire-level (the same encodings motes and proxies exchange over radio);
// Mote names the subject mote for replica traffic.
type BridgeMsg struct {
	Src, Dst DomainID
	Mote     NodeID
	Kind     Kind
	Payload  []byte
}

// bridgeDomain is the receive side of one domain.
type bridgeDomain struct {
	sim     *simtime.Simulator
	handler func(BridgeMsg)
	inbox   []BridgeMsg
	// flights tracks messages Drain has scheduled onto the kernel but
	// not yet delivered, in schedule order — the serializable mirror of
	// the delivery closures, like Medium.flights.
	flights []*bridgeFlight
}

// bridgeFlight is one drained message awaiting kernel delivery.
type bridgeFlight struct {
	deliverAt simtime.Time
	msg       BridgeMsg
}

// Bridge carries wired traffic between partitioned simulation domains.
// Send is safe from any goroutine; Drain must be called only by the
// goroutine driving the destination domain's simulator.
type Bridge struct {
	latency time.Duration

	mu      sync.Mutex
	domains map[DomainID]*bridgeDomain
	uplink  func(BridgeMsg)

	sent, delivered atomic.Uint64
}

// NewBridge creates a bridge whose deliveries take latency of the
// receiving domain's virtual time (a wired LAN/WAN hop; no LPL rendezvous,
// no loss — the wired tier is reliable in the paper's architecture).
func NewBridge(latency time.Duration) *Bridge {
	if latency < 0 {
		latency = 0
	}
	return &Bridge{latency: latency, domains: make(map[DomainID]*bridgeDomain)}
}

// Latency returns the one-way wired delivery latency.
func (b *Bridge) Latency() time.Duration { return b.latency }

// AttachDomain registers a domain's simulator and message handler. The
// handler runs on the domain's own goroutine, from events scheduled by
// Drain.
func (b *Bridge) AttachDomain(d DomainID, sim *simtime.Simulator, h func(BridgeMsg)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.domains[d] = &bridgeDomain{sim: sim, handler: h}
}

// SetUplink installs a forwarder for messages addressed to domains not
// attached to this bridge: in a multi-process cluster each process hosts
// a window of the domains, and replica traffic for a domain hosted
// elsewhere leaves through the uplink (cluster.Site wires it to the
// coordinator connection). Without an uplink such messages drop, as
// before. The uplink runs on the sender's goroutine — a domain worker —
// so it must not block on the receiving domain.
func (b *Bridge) SetUplink(fn func(BridgeMsg)) {
	b.mu.Lock()
	b.uplink = fn
	b.mu.Unlock()
}

// Send enqueues a message for the destination domain. Messages for
// domains not attached locally go to the uplink when one is installed
// (cross-process delivery); with no uplink they drop (a detached domain,
// mirroring radio's silent link-layer loss).
func (b *Bridge) Send(msg BridgeMsg) {
	b.mu.Lock()
	dom, ok := b.domains[msg.Dst]
	uplink := b.uplink
	if ok {
		dom.inbox = append(dom.inbox, msg)
	}
	b.mu.Unlock()
	if ok {
		b.sent.Add(1)
		return
	}
	if uplink != nil {
		b.sent.Add(1)
		uplink(msg)
	}
}

// Drain moves every pending message for domain d onto d's event kernel,
// each delivered after the wired latency. It returns how many messages
// were scheduled. Only the goroutine driving d's simulator may call it.
func (b *Bridge) Drain(d DomainID) int {
	b.mu.Lock()
	dom, ok := b.domains[d]
	if !ok || len(dom.inbox) == 0 {
		b.mu.Unlock()
		return 0
	}
	pending := dom.inbox
	dom.inbox = nil
	b.mu.Unlock()

	at := dom.sim.Now() + simtime.Time(b.latency)
	for _, msg := range pending {
		dom.launch(b, &bridgeFlight{deliverAt: at, msg: msg})
	}
	return len(pending)
}

// launch registers a drained message and schedules its delivery. Only
// the goroutine driving the domain's simulator touches dom.flights (the
// same discipline as Drain), so no lock is needed.
func (dom *bridgeDomain) launch(b *Bridge, fl *bridgeFlight) {
	dom.flights = append(dom.flights, fl)
	dom.sim.ScheduleAt(fl.deliverAt, func() {
		for i, f := range dom.flights {
			if f == fl {
				dom.flights = append(dom.flights[:i], dom.flights[i+1:]...)
				break
			}
		}
		b.delivered.Add(1)
		dom.handler(fl.msg)
	})
}

// Attached reports whether domain d currently has a bridge inbox here.
func (b *Bridge) Attached(d DomainID) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.domains[d]
	return ok
}

// DetachDomain removes a domain from the bridge: subsequent sends to it
// go to the uplink (or drop), like any unhosted domain. Domain migration
// uses this after streaming a domain's state off the local process.
func (b *Bridge) DetachDomain(d DomainID) {
	b.mu.Lock()
	delete(b.domains, d)
	b.mu.Unlock()
}

// PendingFor reports how many undelivered messages queued for domain d
// concern mote m. A non-zero count means d's replica mirror of that mote
// is provably behind the owning domain — per-query freshness bounds treat
// such a replica as stale rather than serve from a snapshot known to lag.
// Traffic for other motes does not count: it says nothing about this
// mote's mirror, and charging it would defeat the replica fast path under
// steady load. The inbox is drained at every worker command, so the scan
// is over a handful of messages at most. Safe from any goroutine.
func (b *Bridge) PendingFor(d DomainID, m NodeID) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	dom, ok := b.domains[d]
	if !ok {
		return 0
	}
	n := 0
	for _, msg := range dom.inbox {
		if msg.Mote == m {
			n++
		}
	}
	return n
}

// Stats reports bridge-wide counters: messages accepted by Send and
// messages delivered to handlers.
func (b *Bridge) Stats() (sent, delivered uint64) {
	return b.sent.Load(), b.delivered.Load()
}
