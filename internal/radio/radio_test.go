package radio

import (
	"testing"
	"time"

	"presto/internal/energy"
	"presto/internal/simtime"
)

func newMedium(t *testing.T, cfg Config) (*simtime.Simulator, *Medium) {
	t.Helper()
	sim := simtime.New(1)
	m, err := NewMedium(sim, cfg, energy.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return sim, m
}

func lossless() Config {
	c := DefaultConfig()
	c.LossProb = 0
	c.JitterMax = 0
	return c
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{LossProb: -0.1},
		{LossProb: 1.0},
		{PropDelay: -time.Second},
		{MaxRetries: -1},
		{ByteTime: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	sim := simtime.New(1)
	if _, err := NewMedium(sim, Config{LossProb: -1}, energy.DefaultParams()); err == nil {
		t.Error("NewMedium accepted bad config")
	}
	if _, err := NewMedium(sim, lossless(), energy.Params{}); err == nil {
		t.Error("NewMedium accepted bad params")
	}
}

func TestDelivery(t *testing.T) {
	sim, m := newMedium(t, lossless())
	var got []Packet
	_, err := m.Attach(1, nil, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Attach(2, nil, 0, func(p Packet) { got = append(got, p) })
	if err != nil {
		t.Fatal(err)
	}
	ep1 := m.nodes[1]
	if err := ep1.Send(2, 7, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if len(got) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(got))
	}
	p := got[0]
	if p.Src != 1 || p.Dst != 2 || p.Kind != 7 || string(p.Payload) != "hello" {
		t.Fatalf("packet %+v", p)
	}
	sent, delivered, lost, _ := m.Stats()
	if sent != 1 || delivered != 1 || lost != 0 {
		t.Fatalf("stats sent=%d delivered=%d lost=%d", sent, delivered, lost)
	}
}

func TestDeliveryDelayIncludesRendezvous(t *testing.T) {
	// A mote with a long LPL interval receives messages later, on average,
	// than an always-on proxy.
	cfg := lossless()
	run := func(lpl time.Duration, seed int64) simtime.Time {
		sim := simtime.New(seed)
		m, _ := NewMedium(sim, cfg, energy.DefaultParams())
		var at simtime.Time
		m.Attach(1, nil, 0, nil)
		m.Attach(2, nil, lpl, func(Packet) { at = sim.Now() })
		m.nodes[1].Send(2, 0, []byte("x"))
		sim.Run()
		return at
	}
	var sumOn, sumDuty simtime.Time
	for seed := int64(0); seed < 20; seed++ {
		sumOn += run(0, seed)
		sumDuty += run(4*time.Second, seed)
	}
	if sumDuty <= sumOn {
		t.Fatalf("duty-cycled delivery (%v) not slower than always-on (%v)", sumDuty, sumOn)
	}
}

func TestEnergyCharges(t *testing.T) {
	cfg := lossless()
	sim, m := newMedium(t, cfg)
	var mMote, mProxy energy.Meter
	m.Attach(1, &mMote, time.Second, nil) // mote, duty-cycled
	m.Attach(2, &mProxy, 0, nil)          // proxy, always on
	payload := make([]byte, 50)

	// Mote -> proxy: no preamble (receiver always on).
	m.nodes[1].Send(2, 0, payload)
	sim.Run()
	p := energy.DefaultParams()
	wantTx := p.TxCost(50, 0)
	if got := mMote.Get(energy.RadioTx); got != wantTx {
		t.Fatalf("mote tx %g, want %g", got, wantTx)
	}
	if got := mProxy.Get(energy.RadioRx); got != p.RxCost(50) {
		t.Fatalf("proxy rx %g, want %g", got, p.RxCost(50))
	}

	// Proxy -> mote: pays the mote's preamble, which dominates.
	before := mProxy.Get(energy.RadioTx)
	m.nodes[2].Send(1, 0, payload)
	sim.Run()
	proxyTx := mProxy.Get(energy.RadioTx) - before
	if proxyTx <= wantTx {
		t.Fatalf("proxy->mote tx %g should exceed mote->proxy %g (preamble)", proxyTx, wantTx)
	}
}

func TestIdleListeningAccrual(t *testing.T) {
	sim, m := newMedium(t, lossless())
	var meter energy.Meter
	m.Attach(1, &meter, time.Second, nil)
	sim.RunFor(time.Hour)
	m.nodes[1].AccrueListen()
	p := energy.DefaultParams()
	want := p.ListenCost(time.Hour, time.Second)
	got := meter.Get(energy.RadioListen)
	if got < want*0.999 || got > want*1.001 {
		t.Fatalf("listen energy %g, want %g", got, want)
	}
	// Accruing again immediately adds nothing.
	m.nodes[1].AccrueListen()
	if meter.Get(energy.RadioListen) != got {
		t.Fatal("double accrual")
	}
}

func TestSetLPLIntervalSplitsAccrual(t *testing.T) {
	sim, m := newMedium(t, lossless())
	var meter energy.Meter
	m.Attach(1, &meter, time.Second, nil)
	sim.RunFor(30 * time.Minute)
	m.nodes[1].SetLPLInterval(2 * time.Second) // halves the idle rate
	sim.RunFor(30 * time.Minute)
	m.nodes[1].AccrueListen()
	p := energy.DefaultParams()
	want := p.ListenCost(30*time.Minute, time.Second) + p.ListenCost(30*time.Minute, 2*time.Second)
	got := meter.Get(energy.RadioListen)
	if got < want*0.999 || got > want*1.001 {
		t.Fatalf("split accrual %g, want %g", got, want)
	}
	if m.nodes[1].LPLInterval() != 2*time.Second {
		t.Fatal("interval not updated")
	}
	m.nodes[1].SetLPLInterval(-5)
	if m.nodes[1].LPLInterval() != 0 {
		t.Fatal("negative interval should clamp to 0")
	}
}

func TestLossAndRetries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LossProb = 0.5
	cfg.MaxRetries = 2
	sim := simtime.New(42)
	m, _ := NewMedium(sim, cfg, energy.DefaultParams())
	delivered := 0
	m.Attach(1, nil, 0, nil)
	m.Attach(2, nil, 0, func(Packet) { delivered++ })
	const n = 500
	for i := 0; i < n; i++ {
		m.nodes[1].Send(2, 0, []byte("x"))
	}
	sim.Run()
	_, d, lost, retried := m.Stats()
	if int(d) != delivered {
		t.Fatalf("stats delivered %d vs handler %d", d, delivered)
	}
	if lost == 0 || retried == 0 {
		t.Fatalf("expected losses and retries at 50%% loss: lost=%d retried=%d", lost, retried)
	}
	// With 3 attempts at p=0.5, delivery prob = 1-0.5^3 = 87.5%.
	rate := float64(delivered) / n
	if rate < 0.80 || rate > 0.95 {
		t.Fatalf("delivery rate %.3f, want ~0.875", rate)
	}
}

func TestRetriesCostEnergy(t *testing.T) {
	// Sender pays per attempt: lossy sends must cost more on average.
	run := func(loss float64) float64 {
		cfg := DefaultConfig()
		cfg.LossProb = loss
		cfg.MaxRetries = 5
		sim := simtime.New(7)
		m, _ := NewMedium(sim, cfg, energy.DefaultParams())
		var meter energy.Meter
		m.Attach(1, &meter, 0, nil)
		m.Attach(2, nil, 0, nil)
		for i := 0; i < 200; i++ {
			m.nodes[1].Send(2, 0, make([]byte, 30))
		}
		sim.Run()
		return meter.Get(energy.RadioTx)
	}
	if lossy, clean := run(0.4), run(0); lossy <= clean {
		t.Fatalf("lossy tx energy %g <= clean %g", lossy, clean)
	}
}

func TestAttachErrors(t *testing.T) {
	_, m := newMedium(t, lossless())
	if _, err := m.Attach(1, nil, 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Attach(1, nil, 0, nil); err != ErrDuplicateNode {
		t.Fatalf("duplicate attach err=%v", err)
	}
	if err := m.nodes[1].Send(99, 0, nil); err == nil {
		t.Fatal("send to unknown node should fail")
	}
}

func TestDetach(t *testing.T) {
	sim, m := newMedium(t, lossless())
	got := 0
	m.Attach(1, nil, 0, nil)
	m.Attach(2, nil, 0, func(Packet) { got++ })
	ep2 := m.nodes[2]
	m.nodes[1].Send(2, 0, []byte("in flight"))
	ep2.Detach()
	sim.Run()
	if got != 0 {
		t.Fatal("detached endpoint received a packet")
	}
	if err := ep2.Send(1, 0, nil); err != ErrDetached {
		t.Fatalf("send from detached err=%v", err)
	}
	_, _, lost, _ := m.Stats()
	if lost != 1 {
		t.Fatalf("in-flight packet to detached node should count lost, got %d", lost)
	}
	ep2.Detach() // idempotent
}

func TestPayloadCopied(t *testing.T) {
	sim, m := newMedium(t, lossless())
	var got []byte
	m.Attach(1, nil, 0, nil)
	m.Attach(2, nil, 0, func(p Packet) { got = p.Payload })
	buf := []byte{1, 2, 3}
	m.nodes[1].Send(2, 0, buf)
	buf[0] = 99 // mutate after send
	sim.Run()
	if got[0] != 1 {
		t.Fatal("payload aliased sender's buffer")
	}
}

func TestEndpointStats(t *testing.T) {
	sim, m := newMedium(t, lossless())
	m.Attach(1, nil, 0, nil)
	m.Attach(2, nil, 0, nil)
	m.nodes[1].Send(2, 0, make([]byte, 10))
	sim.Run()
	tx, _, txB, _ := m.nodes[1].Stats()
	_, rx, _, rxB := m.nodes[2].Stats()
	if tx != 1 || rx != 1 || txB != 10 || rxB != 10 {
		t.Fatalf("stats tx=%d rx=%d txB=%d rxB=%d", tx, rx, txB, rxB)
	}
}

func TestDeterministicDelivery(t *testing.T) {
	run := func() []simtime.Time {
		sim := simtime.New(5)
		cfg := DefaultConfig()
		m, _ := NewMedium(sim, cfg, energy.DefaultParams())
		var times []simtime.Time
		m.Attach(1, nil, 0, nil)
		m.Attach(2, nil, 500*time.Millisecond, func(Packet) { times = append(times, sim.Now()) })
		for i := 0; i < 50; i++ {
			m.nodes[1].Send(2, 0, make([]byte, i))
		}
		sim.Run()
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs diverged: %d vs %d deliveries", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d at %v vs %v", i, a[i], b[i])
		}
	}
}
