package radio

import (
	"sync"
	"testing"
	"time"

	"presto/internal/simtime"
)

func TestBridgeDeliversAcrossDomains(t *testing.T) {
	b := NewBridge(2 * time.Millisecond)
	simA, simB := simtime.New(1), simtime.New(2)
	var got []BridgeMsg
	b.AttachDomain(0, simA, func(m BridgeMsg) { got = append(got, m) })
	b.AttachDomain(1, simB, func(BridgeMsg) {})

	b.Send(BridgeMsg{Src: 1, Dst: 0, Mote: 7, Kind: 3, Payload: []byte{1, 2}})
	b.Send(BridgeMsg{Src: 1, Dst: 0, Mote: 8, Kind: 4})
	if len(got) != 0 {
		t.Fatal("delivered before drain")
	}
	if n := b.Drain(0); n != 2 {
		t.Fatalf("drained %d, want 2", n)
	}
	simA.RunFor(time.Millisecond)
	if len(got) != 0 {
		t.Fatal("delivered before the wired latency elapsed")
	}
	simA.RunFor(5 * time.Millisecond)
	if len(got) != 2 || got[0].Mote != 7 || got[1].Mote != 8 {
		t.Fatalf("got %+v", got)
	}
	sent, delivered := b.Stats()
	if sent != 2 || delivered != 2 {
		t.Fatalf("stats sent=%d delivered=%d", sent, delivered)
	}
}

func TestBridgeDropsUnknownDomain(t *testing.T) {
	b := NewBridge(0)
	b.Send(BridgeMsg{Dst: 9})
	if sent, _ := b.Stats(); sent != 0 {
		t.Fatalf("unknown destination accepted: sent=%d", sent)
	}
	if n := b.Drain(9); n != 0 {
		t.Fatalf("drained %d from unknown domain", n)
	}
}

func TestBridgeUplinkForwardsUnhostedDomains(t *testing.T) {
	// A windowed (cluster-site) process hosts only some domains; traffic
	// for the rest leaves through the uplink instead of dropping.
	b := NewBridge(time.Millisecond)
	sim := simtime.New(1)
	b.AttachDomain(1, sim, func(BridgeMsg) {})
	var up []BridgeMsg
	b.SetUplink(func(m BridgeMsg) { up = append(up, m) })

	b.Send(BridgeMsg{Src: 1, Dst: 0, Mote: 9, Kind: 2, Payload: []byte{5}})
	if len(up) != 1 || up[0].Mote != 9 {
		t.Fatalf("uplink got %+v", up)
	}
	if sent, _ := b.Stats(); sent != 1 {
		t.Fatalf("uplinked message not counted: sent=%d", sent)
	}
	// Locally-attached destinations still use the inbox, not the uplink.
	b.Send(BridgeMsg{Src: 0, Dst: 1, Mote: 3})
	if len(up) != 1 {
		t.Fatal("local traffic leaked to the uplink")
	}
	if n := b.Drain(1); n != 1 {
		t.Fatalf("drained %d local messages, want 1", n)
	}
}

func TestBridgeConcurrentSenders(t *testing.T) {
	// Senders race from many goroutines (the cross-domain case); the
	// receiving domain drains serially.
	b := NewBridge(time.Millisecond)
	sim := simtime.New(1)
	count := 0
	b.AttachDomain(0, sim, func(BridgeMsg) { count++ })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				b.Send(BridgeMsg{Src: DomainID(g + 1), Dst: 0, Mote: NodeID(i)})
			}
		}(g)
	}
	wg.Wait()
	b.Drain(0)
	sim.RunFor(10 * time.Millisecond)
	if count != 400 {
		t.Fatalf("delivered %d, want 400", count)
	}
}
